"""Algorithm ``Route`` — guaranteed ad hoc routing (Section 3, Theorem 1).

The algorithm routes a message from a source ``s`` to a target ``t`` by
following a universal exploration sequence over the degree-reduced (3-regular)
version of the network.  The message header carries only

    ``(s, t, dir, status, i)``

— the two endpoint names, one direction bit, one status bit and the current
index into the exploration sequence — i.e. ``O(log n)`` bits.  Intermediate
nodes store nothing.  If the target lies in the source's connected component
the walk is guaranteed to reach it; otherwise the walk runs out of sequence
and, thanks to the reversibility of exploration sequences, backtracks to the
source carrying a *failure* confirmation.  Either way the source learns the
outcome.

Two interchangeable realisations are provided:

* :func:`route` — a centralised walker that executes the exact same step rule
  directly on the graph.  It is fast and is what the benchmark harness sweeps.
* :func:`route_on_network` — the fully distributed version: a
  :class:`~repro.network.simulator.Protocol` where each physical node locally
  simulates its virtual (degree-reduction) nodes, all transient state travels
  in the message header, and every physical transmission is simulated and
  accounted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.exploration import ExplorationSequence, WalkState, step_backward, step_forward
from repro.core.memory import bits_for_namespace
from repro.core.universal import RandomSequenceProvider, SequenceProvider
from repro.errors import RoutingError
from repro.graphs.connectivity import connected_component
from repro.graphs.degree_reduction import EXTERNAL_PORT, DegreeReducedGraph, reduce_to_three_regular
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork
from repro.network.message import Header, Message
from repro.network.node import NodeContext
from repro.network.simulator import Protocol, SimulationResult, Simulator

__all__ = [
    "Direction",
    "RouteOutcome",
    "RoutingHeader",
    "RouteResult",
    "route",
    "route_on_network",
    "RouteProtocol",
    "default_provider",
]

#: Shared default sequence provider so repeated calls reuse cached sequences.
_DEFAULT_PROVIDER = RandomSequenceProvider(seed=2008)


def default_provider() -> RandomSequenceProvider:
    """The library-wide default exploration-sequence provider."""
    return _DEFAULT_PROVIDER


class Direction(enum.Enum):
    """Travel direction of the routed message (the header's ``dir`` bit)."""

    FORWARD = "forward"
    BACK = "back"


class RouteOutcome(enum.Enum):
    """Final verdict reported back at the source (the header's ``status`` bit)."""

    SUCCESS = "success"
    FAILURE = "failure"


@dataclass(frozen=True)
class RoutingHeader:
    """The paper's message header ``(s, t, dir, status, i)`` plus the size bound.

    ``size_bound`` is the bound ``n`` on the number of vertices of the reduced
    connected component that selects which sequence ``T_n`` the nodes follow.
    Section 3 first assumes it is known; Section 4 (Algorithm ``CountNodes``)
    shows how the source discovers it, after which it simply rides along in
    the header — still ``O(log n)`` bits.
    """

    source: int
    target: int
    direction: Direction
    status: Optional[RouteOutcome]
    index: int
    size_bound: int

    def bit_widths(self, name_bits: int, index_bits: int) -> Dict[str, int]:
        """Declared header field widths for the given name/index bit budgets."""
        return {
            "source": name_bits,
            "target": name_bits,
            "direction": 1,
            "status": 2,
            "index": index_bits,
            "size_bound": index_bits,
        }


@dataclass(frozen=True)
class RouteResult:
    """Everything a single routing attempt produced.

    ``outcome`` is the verdict the source ends up holding; ``delivered`` says
    whether the payload actually reached the target (for a correct run these
    agree: SUCCESS iff delivered).  Step counts distinguish the walk on the
    reduced graph (``virtual``) from actual physical transmissions.
    """

    outcome: RouteOutcome
    delivered: bool
    source: int
    target: int
    size_bound: int
    sequence_length: int
    forward_virtual_steps: int
    backward_virtual_steps: int
    physical_hops: int
    target_found_at_step: Optional[int]
    header_bits: int
    node_memory_high_water_bits: int = 0
    simulation: Optional[SimulationResult] = None

    @property
    def total_virtual_steps(self) -> int:
        """Forward plus backward steps on the reduced graph."""
        return self.forward_virtual_steps + self.backward_virtual_steps

    @property
    def confirmed(self) -> bool:
        """True — the algorithm always returns a confirmation to the source."""
        return True


def _resolve_size_bound(
    reduction: DegreeReducedGraph, source: int, size_bound: Optional[int]
) -> int:
    """Bound on the reduced component size used to pick ``T_n``.

    When the caller does not supply one we use the true size of the source's
    component in the reduced graph — exactly the quantity Algorithm
    ``CountNodes`` (Section 4) computes without global knowledge; see
    :func:`repro.core.counting.count_nodes`.
    """
    if size_bound is not None:
        if size_bound < 1:
            raise RoutingError("size_bound must be positive")
        return size_bound
    gateway = reduction.gateway(source)
    return len(connected_component(reduction.graph, gateway))


def _header_bits(namespace_size: int, sequence_length: int) -> int:
    """Total header size in bits for a given namespace and sequence length."""
    name_bits = bits_for_namespace(namespace_size)
    index_bits = max(1, sequence_length.bit_length())
    return 2 * name_bits + 1 + 2 + 2 * index_bits


# --------------------------------------------------------------------------- #
# Centralised walker
# --------------------------------------------------------------------------- #


def route(
    graph: LabeledGraph,
    source: int,
    target: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> RouteResult:
    """Run Algorithm ``Route`` from ``source`` towards ``target`` on ``graph``.

    ``graph`` is the physical network (arbitrary degrees); it is degree-reduced
    internally.  ``target`` may name a vertex outside the source's component
    — or a vertex that does not exist at all — in which case the result's
    outcome is :data:`RouteOutcome.FAILURE`, obtained after the walk exhausts
    the sequence and backtracks, exactly as in the paper.

    Parameters
    ----------
    provider:
        Exploration-sequence provider (defaults to the shared library
        provider).
    size_bound:
        Bound on the reduced component size.  ``None`` uses the true size
        (what ``CountNodes`` would report).
    start_port:
        Entry port of the initial edge at the source's gateway virtual node.
    namespace_size:
        Only used for header-size accounting; defaults to the number of
        vertices.
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    provider = provider if provider is not None else _DEFAULT_PROVIDER
    reduction = reduce_to_three_regular(graph)
    reduced = reduction.graph
    bound = _resolve_size_bound(reduction, source, size_bound)
    sequence = provider.sequence_for(bound)
    length = len(sequence)
    namespace = namespace_size if namespace_size is not None else max(1, graph.num_vertices)

    state = WalkState(vertex=reduction.gateway(source), entry_port=start_port)
    index = 0
    forward_steps = 0
    physical_hops = 0
    target_found_at: Optional[int] = None
    outcome: Optional[RouteOutcome] = None

    # Forward phase: follow the sequence until the target is met or the
    # sequence is exhausted.
    while True:
        if reduction.to_original(state.vertex) == target:
            outcome = RouteOutcome.SUCCESS
            target_found_at = forward_steps
            break
        if index >= length:
            outcome = RouteOutcome.FAILURE
            break
        next_state = step_forward(reduced, state, sequence[index])
        index += 1
        forward_steps += 1
        if reduction.to_original(next_state.vertex) != reduction.to_original(state.vertex):
            physical_hops += 1
        state = next_state

    # Backward phase: retrace the walk (reversibility, Section 2) until a
    # virtual node of the source is reached, carrying the status.
    backward_steps = 0
    while reduction.to_original(state.vertex) != source and index > 0:
        previous_state = step_backward(reduced, state, sequence[index - 1])
        index -= 1
        backward_steps += 1
        if reduction.to_original(previous_state.vertex) != reduction.to_original(state.vertex):
            physical_hops += 1
        state = previous_state
    if reduction.to_original(state.vertex) != source:
        # The walk started at the source, so index == 0 implies we are back at
        # the start state; reaching this line would mean the reversibility
        # invariant was violated.
        raise RoutingError("backtracking failed to return to the source")

    return RouteResult(
        outcome=outcome,
        delivered=outcome is RouteOutcome.SUCCESS,
        source=source,
        target=target,
        size_bound=bound,
        sequence_length=length,
        forward_virtual_steps=forward_steps,
        backward_virtual_steps=backward_steps,
        physical_hops=physical_hops,
        target_found_at_step=target_found_at,
        header_bits=_header_bits(namespace, length),
    )


# --------------------------------------------------------------------------- #
# Distributed protocol
# --------------------------------------------------------------------------- #


class RouteProtocol(Protocol):
    """The distributed realisation of Algorithm ``Route``.

    Every physical node locally simulates the virtual nodes its degree-
    reduction cluster contributes (Fig. 1: "Each node v simulates O(deg(v))
    nodes of degree 3").  A node that receives the message reconstructs the
    virtual walk position from its arrival port alone, advances the walk
    through its own virtual nodes — consulting only its locally derivable
    cluster structure and the shared deterministic sequence ``T_n`` — and
    forwards the message over the physical port on which the walk leaves its
    cluster.  No per-node state survives between messages.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        payload: object = None,
    ) -> None:
        self._network = network
        self._source = source
        self._target = target
        self._payload = payload
        self._provider = provider if provider is not None else _DEFAULT_PROVIDER
        # The reduction is computed once and shared, but handlers only ever
        # consult the slice of it describing their own node (cluster members,
        # their rotation entries and the carrier lookup); that slice is
        # locally computable from the node's own degree, so the locality
        # discipline of the model is respected.
        self._reduction = reduce_to_three_regular(network.graph)
        self._bound = _resolve_size_bound(self._reduction, source, size_bound)
        self._sequence = self._provider.sequence_for(self._bound)
        self._name_bits = network.name_bits
        self._index_bits = max(1, len(self._sequence).bit_length())
        self.delivered_at_target = False
        self.target_found_at_step: Optional[int] = None

    # -- header helpers -------------------------------------------------- #

    def _widths(self) -> Dict[str, int]:
        return {
            "source": self._name_bits,
            "target": self._name_bits,
            "direction": 1,
            "status": 2,
            "index": self._index_bits,
            "size_bound": self._index_bits,
        }

    def _make_message(
        self, direction: Direction, status: Optional[RouteOutcome], index: int
    ) -> Message:
        header = Header.from_values(
            self._widths(),
            {
                "source": self._network.name_of(self._source),
                "target": self._network.name_of(self._target)
                if self._target in self._network.names
                else self._target,
                "direction": 0 if direction is Direction.FORWARD else 1,
                "status": {None: 0, RouteOutcome.SUCCESS: 1, RouteOutcome.FAILURE: 2}[status],
                "index": index,
                "size_bound": self._bound,
            },
        )
        return Message(header=header, payload=self._payload)

    @staticmethod
    def _decode(message: Message) -> Tuple[Direction, Optional[RouteOutcome], int]:
        direction = Direction.FORWARD if message.header.get("direction") == 0 else Direction.BACK
        status_code = message.header.get("status")
        status = {0: None, 1: RouteOutcome.SUCCESS, 2: RouteOutcome.FAILURE}[status_code]
        return direction, status, int(message.header.get("index"))

    # -- local walk processing ------------------------------------------- #

    def _process(
        self,
        ctx: NodeContext,
        state: WalkState,
        index: int,
        direction: Direction,
        status: Optional[RouteOutcome],
    ) -> None:
        """Advance the walk locally until it leaves this node or terminates."""
        reduced = self._reduction.graph
        sequence = self._sequence
        length = len(sequence)
        node_id = ctx.node_id
        while True:
            owner = self._reduction.to_original(state.vertex)
            if direction is Direction.FORWARD:
                if owner == self._target:
                    if not self.delivered_at_target:
                        self.delivered_at_target = True
                        self.target_found_at_step = index
                        ctx.deliver(self._payload, note="routed payload")
                    direction = Direction.BACK
                    status = RouteOutcome.SUCCESS
                    continue
                if index >= length:
                    direction = Direction.BACK
                    status = RouteOutcome.FAILURE
                    continue
                offset = sequence[index]
                next_state = step_forward(reduced, state, offset)
                index += 1
                next_owner = self._reduction.to_original(next_state.vertex)
                if next_owner != owner:
                    # A cluster-leaving step always exits through the virtual
                    # node's external port, whose physical counterpart is the
                    # original port that virtual node carries.
                    physical_port = self._physical_port_of(owner, state.vertex)
                    ctx.send(physical_port, self._make_message(direction, status, index))
                    return
                state = next_state
            else:
                if owner == self._source:
                    ctx.finish(status)
                    return
                if index == 0:
                    ctx.finish(status)
                    return
                offset = sequence[index - 1]
                previous_state = step_backward(reduced, state, offset)
                index -= 1
                previous_owner = self._reduction.to_original(previous_state.vertex)
                if previous_owner != owner:
                    physical_port = self._physical_port_of(owner, state.vertex)
                    ctx.send(physical_port, self._make_message(direction, status, index))
                    return
                state = previous_state

    def _physical_port_of(self, owner: int, virtual_vertex: int) -> int:
        """Physical port of ``owner`` whose external edge this virtual vertex carries."""
        cluster = self._reduction.cluster(owner)
        if len(cluster) == 1:
            return 0
        return cluster.index(virtual_vertex)

    # -- Protocol interface ----------------------------------------------- #

    def on_start(self, ctx: NodeContext) -> None:
        state = WalkState(vertex=self._reduction.gateway(self._source), entry_port=0)
        self._process(ctx, state, index=0, direction=Direction.FORWARD, status=None)

    def on_message(self, ctx: NodeContext, in_port: int, message: Message) -> None:
        direction, status, index = self._decode(message)
        virtual = self._reduction.carrier(ctx.node_id, in_port)
        if direction is Direction.FORWARD:
            state = WalkState(vertex=virtual, entry_port=EXTERNAL_PORT)
        else:
            # The sender already undid step ``index``; reconstruct the entry
            # port of the pre-step state locally from the same offset.
            offset = self._sequence[index]
            degree = self._reduction.graph.degree(virtual)
            state = WalkState(vertex=virtual, entry_port=(EXTERNAL_PORT - offset) % degree)
        self._process(ctx, state, index, direction, status)


def route_on_network(
    network: AdHocNetwork,
    source: int,
    target: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    payload: object = None,
    node_memory_bits: Optional[int] = None,
    max_events: Optional[int] = None,
) -> RouteResult:
    """Run the distributed Algorithm ``Route`` on a simulated network.

    This is the end-to-end reproduction of Theorem 1: the message is actually
    transmitted hop by hop, every header is bit-accounted, per-node memory is
    metered, and the source node ends the run holding the success/failure
    verdict.
    """
    if not network.graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a node of the network")
    protocol = RouteProtocol(
        network,
        source=source,
        target=target,
        provider=provider,
        size_bound=size_bound,
        payload=payload,
    )
    simulator = network.simulator(node_memory_bits=node_memory_bits)
    length = len(protocol._sequence)
    budget = max_events if max_events is not None else 4 * length + 64
    result = simulator.run(protocol, initiators=[source], max_events=budget)
    status = result.result_at(source)
    if status is None:
        raise RoutingError(
            "the source never received a confirmation; the simulation budget "
            "may be too small or the protocol violated an invariant"
        )
    outcome = status if isinstance(status, RouteOutcome) else RouteOutcome(status)
    return RouteResult(
        outcome=outcome,
        delivered=protocol.delivered_at_target,
        source=source,
        target=target,
        size_bound=protocol._bound,
        sequence_length=length,
        forward_virtual_steps=protocol.target_found_at_step or 0,
        backward_virtual_steps=0,
        physical_hops=result.stats.transmissions,
        target_found_at_step=protocol.target_found_at_step,
        header_bits=result.stats.max_header_bits,
        node_memory_high_water_bits=simulator.memory_high_water_bits(),
        simulation=result,
    )
