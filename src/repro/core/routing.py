"""Algorithm ``Route`` — guaranteed ad hoc routing (Section 3, Theorem 1).

The algorithm routes a message from a source ``s`` to a target ``t`` by
following a universal exploration sequence over the degree-reduced (3-regular)
version of the network.  The message header carries only

    ``(s, t, dir, status, i)``

— the two endpoint names, one direction bit, a two-bit status field (none /
success / failure) and the current index into the exploration sequence — i.e.
``O(log n)`` bits.  Intermediate nodes store nothing.  If the target lies in
the source's connected component the walk is guaranteed to reach it; otherwise
the walk runs out of sequence and, thanks to the reversibility of exploration
sequences, backtracks to the source carrying a *failure* confirmation.  Either
way the source learns the outcome.

Two interchangeable realisations are provided:

* :func:`route` — a centralised walker that executes the exact same step rule
  directly on the graph.  It is fast and is what the benchmark harness sweeps.
* :func:`route_on_network` — the fully distributed version: a
  :class:`~repro.network.simulator.Protocol` where each physical node locally
  simulates its virtual (degree-reduction) nodes, all transient state travels
  in the message header, and every physical transmission is simulated and
  accounted.

Both realisations run on the prepared engine of :mod:`repro.core.engine`: the
degree reduction, the component size tables and the flat-array walk kernel are
computed once per graph and shared across calls, so repeated routes on the
same network pay only for the walk itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.memory import bits_for_namespace
from repro.core.universal import RandomSequenceProvider, SequenceProvider
from repro.errors import RoutingError
from repro.graphs.degree_reduction import EXTERNAL_PORT
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork
from repro.network.message import Header, Message
from repro.network.node import NodeContext
from repro.network.simulator import Protocol, SimulationResult

__all__ = [
    "Direction",
    "RouteOutcome",
    "RoutingHeader",
    "RouteResult",
    "route",
    "route_on_network",
    "RouteProtocol",
    "default_provider",
]

#: Shared default sequence provider so repeated calls reuse cached sequences.
_DEFAULT_PROVIDER = RandomSequenceProvider(seed=2008)


def default_provider() -> RandomSequenceProvider:
    """The library-wide default exploration-sequence provider."""
    return _DEFAULT_PROVIDER


class Direction(enum.Enum):
    """Travel direction of the routed message (the header's ``dir`` bit)."""

    FORWARD = "forward"
    BACK = "back"


class RouteOutcome(enum.Enum):
    """Final verdict reported back at the source (the header's ``status`` bit)."""

    SUCCESS = "success"
    FAILURE = "failure"


@dataclass(frozen=True)
class RoutingHeader:
    """The paper's message header ``(s, t, dir, status, i)`` plus the size bound.

    ``status`` is a three-valued field (none / success / failure) and
    therefore occupies **two** bits in :meth:`bit_widths`; the paper's prose
    calls it the confirmation bit because only the success/failure distinction
    travels back to the source.

    ``size_bound`` is the bound ``n`` on the number of vertices of the reduced
    connected component that selects which sequence ``T_n`` the nodes follow.
    Section 3 first assumes it is known; Section 4 (Algorithm ``CountNodes``)
    shows how the source discovers it, after which it simply rides along in
    the header — still ``O(log n)`` bits.
    """

    source: int
    target: int
    direction: Direction
    status: Optional[RouteOutcome]
    index: int
    size_bound: int

    def bit_widths(self, name_bits: int, index_bits: int) -> Dict[str, int]:
        """Declared header field widths for the given name/index bit budgets."""
        return {
            "source": name_bits,
            "target": name_bits,
            "direction": 1,
            "status": 2,
            "index": index_bits,
            "size_bound": index_bits,
        }


@dataclass(frozen=True)
class RouteResult:
    """Everything a single routing attempt produced.

    ``outcome`` is the verdict the source ends up holding; ``delivered`` says
    whether the payload actually reached the target (for a correct run these
    agree: SUCCESS iff delivered).  Step counts distinguish the walk on the
    reduced graph (``virtual``) from actual physical transmissions.
    """

    outcome: RouteOutcome
    delivered: bool
    source: int
    target: int
    size_bound: int
    sequence_length: int
    forward_virtual_steps: int
    backward_virtual_steps: int
    physical_hops: int
    target_found_at_step: Optional[int]
    header_bits: int
    node_memory_high_water_bits: int = 0
    simulation: Optional[SimulationResult] = None

    @property
    def total_virtual_steps(self) -> int:
        """Forward plus backward steps on the reduced graph."""
        return self.forward_virtual_steps + self.backward_virtual_steps

    @property
    def confirmed(self) -> bool:
        """True — the algorithm always returns a confirmation to the source."""
        return True


def _header_bits(namespace_size: int, sequence_length: int) -> int:
    """Total header size in bits for a given namespace and sequence length."""
    name_bits = bits_for_namespace(namespace_size)
    index_bits = max(1, sequence_length.bit_length())
    return 2 * name_bits + 1 + 2 + 2 * index_bits


# --------------------------------------------------------------------------- #
# Centralised walker
# --------------------------------------------------------------------------- #


def route(
    graph: LabeledGraph,
    source: int,
    target: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> RouteResult:
    """Run Algorithm ``Route`` from ``source`` towards ``target`` on ``graph``.

    ``graph`` is the physical network (arbitrary degrees); it is degree-reduced
    internally.  ``target`` may name a vertex outside the source's component
    — or a vertex that does not exist at all — in which case the result's
    outcome is :data:`RouteOutcome.FAILURE`, obtained after the walk exhausts
    the sequence and backtracks, exactly as in the paper.

    Parameters
    ----------
    provider:
        Exploration-sequence provider (defaults to the shared library
        provider).
    size_bound:
        Bound on the reduced component size.  ``None`` uses the true size
        (what ``CountNodes`` would report).
    start_port:
        Entry port of the initial edge at the source's gateway virtual node.
    namespace_size:
        Only used for header-size accounting; defaults to the number of
        vertices.
    """
    # The engine caches the reduction, size tables and compiled walk kernel
    # per graph, so repeated calls only pay for the walk itself.  Imported
    # lazily because the engine module imports this one for the result types.
    from repro.core.engine import prepare

    return prepare(graph).route(
        source,
        target,
        provider=provider,
        size_bound=size_bound,
        start_port=start_port,
        namespace_size=namespace_size,
    )


# --------------------------------------------------------------------------- #
# Distributed protocol
# --------------------------------------------------------------------------- #


class RouteProtocol(Protocol):
    """The distributed realisation of Algorithm ``Route``.

    Every physical node locally simulates the virtual nodes its degree-
    reduction cluster contributes (Fig. 1: "Each node v simulates O(deg(v))
    nodes of degree 3").  A node that receives the message reconstructs the
    virtual walk position from its arrival port alone, advances the walk
    through its own virtual nodes — consulting only its locally derivable
    cluster structure and the shared deterministic sequence ``T_n`` — and
    forwards the message over the physical port on which the walk leaves its
    cluster.  No per-node state survives between messages.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        payload: object = None,
        engine: Optional[object] = None,
    ) -> None:
        from repro.core.engine import PreparedNetwork, prepare

        self._network = network
        self._source = source
        self._target = target
        self._payload = payload
        self._provider = provider if provider is not None else _DEFAULT_PROVIDER
        # The prepared engine is computed once per graph and shared, but
        # handlers only ever consult the slice of it describing their own node
        # (cluster members, their rotation entries and the carrier lookup);
        # that slice is locally computable from the node's own degree, so the
        # locality discipline of the model is respected.
        if engine is not None:
            if not isinstance(engine, PreparedNetwork):
                raise RoutingError("engine must be a PreparedNetwork")
            if engine.graph is not network.graph:
                raise RoutingError(
                    "engine was prepared for a different graph than this network's"
                )
        self._engine = engine if engine is not None else prepare(network.graph)
        self._reduction = self._engine.reduction
        self._kernel = self._engine.kernel
        self._bound = self._engine.resolve_size_bound(source, size_bound)
        self._offsets = self._engine.offsets_for(self._bound, self._provider)
        # The raw offsets ARE the sequence; the alias keeps the historical
        # attribute that callers size simulation budgets from.
        self._sequence = self._offsets
        self._name_bits = network.name_bits
        self._index_bits = max(1, len(self._sequence).bit_length())
        # An unknown target has no universal name; the header carries the
        # all-ones in-namespace sentinel instead so the message stays
        # well-formed and the walk fails gracefully (the outcome comparison
        # uses node ids held by the protocol, never this field).
        self._target_name = (
            network.name_of(target)
            if target in network.names
            else (1 << self._name_bits) - 1
        )
        self.delivered_at_target = False
        self.target_found_at_step: Optional[int] = None
        #: Real walk-step counters, mirrored from the centralised walker so
        #: ``route_on_network`` reports the same virtual-step accounting.
        self.forward_steps = 0
        self.backward_steps = 0

    # -- header helpers -------------------------------------------------- #

    def _widths(self) -> Dict[str, int]:
        return {
            "source": self._name_bits,
            "target": self._name_bits,
            "direction": 1,
            "status": 2,
            "index": self._index_bits,
            "size_bound": self._index_bits,
        }

    def _make_message(
        self, direction: Direction, status: Optional[RouteOutcome], index: int
    ) -> Message:
        header = Header.from_values(
            self._widths(),
            {
                "source": self._network.name_of(self._source),
                "target": self._target_name,
                "direction": 0 if direction is Direction.FORWARD else 1,
                "status": {None: 0, RouteOutcome.SUCCESS: 1, RouteOutcome.FAILURE: 2}[status],
                "index": index,
                "size_bound": self._bound,
            },
        )
        return Message(header=header, payload=self._payload)

    @staticmethod
    def _decode(message: Message) -> Tuple[Direction, Optional[RouteOutcome], int]:
        direction = Direction.FORWARD if message.header.get("direction") == 0 else Direction.BACK
        status_code = message.header.get("status")
        status = {0: None, 1: RouteOutcome.SUCCESS, 2: RouteOutcome.FAILURE}[status_code]
        return direction, status, int(message.header.get("index"))

    # -- local walk processing ------------------------------------------- #

    def _process(
        self,
        ctx: NodeContext,
        vertex: int,
        entry_port: int,
        index: int,
        direction: Direction,
        status: Optional[RouteOutcome],
    ) -> None:
        """Advance the walk locally until it leaves this node or terminates.

        The walk runs on the engine's compiled arrays: ``(vertex, entry_port)``
        are plain ints and each step is two list indexes, but the step rule is
        the same one :func:`repro.core.exploration.step_forward` defines.
        """
        kernel = self._kernel
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner_of = kernel.owner
        physical_port_of = kernel.physical_port
        sequence = self._offsets
        length = len(sequence)
        while True:
            owner = owner_of[vertex]
            if direction is Direction.FORWARD:
                if owner == self._target:
                    if not self.delivered_at_target:
                        self.delivered_at_target = True
                        self.target_found_at_step = index
                        ctx.deliver(self._payload, note="routed payload")
                    direction = Direction.BACK
                    status = RouteOutcome.SUCCESS
                    continue
                if index >= length:
                    direction = Direction.BACK
                    status = RouteOutcome.FAILURE
                    continue
                edge = 3 * vertex + (entry_port + sequence[index]) % 3
                index += 1
                self.forward_steps += 1
                next_v = next_vertex[edge]
                if owner_of[next_v] != owner:
                    # A cluster-leaving step always exits through the virtual
                    # node's external port, whose physical counterpart is the
                    # original port that virtual node carries.
                    ctx.send(physical_port_of[vertex], self._make_message(direction, status, index))
                    return
                entry_port = next_port[edge]
                vertex = next_v
            else:
                if owner == self._source:
                    ctx.finish(status)
                    return
                if index == 0:
                    ctx.finish(status)
                    return
                offset = sequence[index - 1]
                edge = 3 * vertex + entry_port
                index -= 1
                self.backward_steps += 1
                previous_v = next_vertex[edge]
                if owner_of[previous_v] != owner:
                    ctx.send(physical_port_of[vertex], self._make_message(direction, status, index))
                    return
                entry_port = (next_port[edge] - offset) % 3
                vertex = previous_v

    def _physical_port_of(self, owner: int, virtual_vertex: int) -> int:
        """Physical port of ``owner`` whose external edge this virtual vertex carries."""
        return self._kernel.physical_port[virtual_vertex]

    # -- Protocol interface ----------------------------------------------- #

    def on_start(self, ctx: NodeContext) -> None:
        self._process(
            ctx,
            self._kernel.gateway(self._source),
            0,
            index=0,
            direction=Direction.FORWARD,
            status=None,
        )

    def on_message(self, ctx: NodeContext, in_port: int, message: Message) -> None:
        direction, status, index = self._decode(message)
        virtual = self._reduction.carrier(ctx.node_id, in_port)
        if direction is Direction.FORWARD:
            entry_port = EXTERNAL_PORT
        else:
            # The sender already undid step ``index``; reconstruct the entry
            # port of the pre-step state locally from the same offset (every
            # reduced vertex has degree 3).
            entry_port = (EXTERNAL_PORT - self._offsets[index]) % 3
        self._process(ctx, virtual, entry_port, index, direction, status)


def route_on_network(
    network: AdHocNetwork,
    source: int,
    target: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    payload: object = None,
    node_memory_bits: Optional[int] = None,
    max_events: Optional[int] = None,
    engine: Optional[object] = None,
) -> RouteResult:
    """Run the distributed Algorithm ``Route`` on a simulated network.

    This is the end-to-end reproduction of Theorem 1: the message is actually
    transmitted hop by hop, every header is bit-accounted, per-node memory is
    metered, and the source node ends the run holding the success/failure
    verdict.  ``engine`` optionally supplies a prebuilt
    :class:`~repro.core.engine.PreparedNetwork` for the network's graph;
    otherwise the shared per-graph engine is used, so repeated calls on one
    network never recompute the reduction.  A ``target`` that names no node
    fails gracefully: the walk exhausts the sequence and the source receives
    a FAILURE confirmation, exactly like the centralised walker.
    """
    if not network.graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a node of the network")
    protocol = RouteProtocol(
        network,
        source=source,
        target=target,
        provider=provider,
        size_bound=size_bound,
        payload=payload,
        engine=engine,
    )
    simulator = network.simulator(node_memory_bits=node_memory_bits)
    length = len(protocol._sequence)
    budget = max_events if max_events is not None else 4 * length + 64
    result = simulator.run(protocol, initiators=[source], max_events=budget)
    status = result.result_at(source)
    if status is None:
        raise RoutingError(
            "the source never received a confirmation; the simulation budget "
            "may be too small or the protocol violated an invariant"
        )
    outcome = status if isinstance(status, RouteOutcome) else RouteOutcome(status)
    return RouteResult(
        outcome=outcome,
        delivered=protocol.delivered_at_target,
        source=source,
        target=target,
        size_bound=protocol._bound,
        sequence_length=length,
        forward_virtual_steps=protocol.forward_steps,
        backward_virtual_steps=protocol.backward_steps,
        physical_hops=result.stats.transmissions,
        target_found_at_step=protocol.target_found_at_step,
        header_bits=result.stats.max_header_bits,
        node_memory_high_water_bits=simulator.memory_high_water_bits(),
        simulation=result,
    )
