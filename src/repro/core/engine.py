"""Prepared routing engine — amortise all topology-derived state across calls.

Every entry point of the seed code base (:func:`repro.core.routing.route`,
:func:`repro.core.routing.route_on_network`, counting, broadcasting, the
baselines and the CLI) used to recompute the same three things on every call:
the Fig. 1 degree reduction, the size of the source's reduced component, and a
dict-of-tuples walk over the reduced rotation map.  For a workload that routes
many messages over one static network — the paper's whole setting — that work
is pure overhead: the topology never changes between calls.

:class:`PreparedNetwork` computes all of it **once per graph**:

* the degree reduction (shared, immutable);
* the flat-array walk kernel (:class:`repro.core.walk_kernel.CompiledWalk`)
  that turns each walk step into two list indexes;
* the per-component size table that makes the ``CountNodes`` bound an O(1)
  lookup;
* a per-(provider, bound) cache of raw offset tuples so the exploration
  sequence is materialised exactly once.

It then serves unlimited :meth:`route` calls and the batch API
:meth:`route_many` against that shared state.  :func:`prepare` maintains a
small keyed cache so independent call sites (routing, counting, broadcast,
the distributed protocols, benchmarks) all land on the same engine for the
same graph object.

Batches large enough to amortise vectorization run on the lockstep batched
walk kernel of :mod:`repro.core.batch_kernel` (all walks advance one
synchronous step at a time over the compiled arrays); small batches, and
every batch when NumPy is not installed, run the scalar loops
``reference_route_many`` — the executable specifications the batched path
must match element for element (asserted by the ``batch-parity`` conformance
invariant and ``benchmarks/bench_batch.py``).

Results are bit-for-bit identical to the seed walkers: the kernel encodes the
same rotation map, the step rule is unchanged, and the header accounting uses
the same formulas.

:class:`PreparedSchedule` extends the same treatment to the dynamic-topology
extension (:mod:`repro.network.dynamics`, *not* part of the paper, which
assumes a static network): every snapshot of a
:class:`~repro.network.dynamics.TopologySchedule` is compiled into its walk
kernel exactly once — rotation-identical snapshots share one kernel, and each
compilation lands in the same per-graph cache the static engine uses — and
the schedule walk *resumes* across switch-overs by translating the current
virtual position between kernels in O(1) instead of re-deriving the reduction
per call.  Outcomes are identical to
:func:`repro.network.dynamics.reference_route_over_schedule`, the original
per-call implementation kept as the executable specification.

**Serial reference vs. prepared/parallel split.**  Everything in this module
is the *optimised* realisation; the executable specifications live elsewhere
and are never edited for speed: :func:`repro.core.routing.route` and
:func:`repro.core.routing.route_on_network` specify static routing,
:func:`repro.network.dynamics.reference_route_over_schedule` specifies the
schedule walk, and
:func:`repro.analysis.experiments.reference_run_parameter_sweep` specifies
sweep aggregation.  The conformance harness
(:mod:`repro.analysis.conformance`) asserts the two sides agree.

**Worker safety.**  The sharded sweep orchestrator
(:mod:`repro.analysis.runner`) runs one process pool per sweep; each worker
process has its own copy of the module-level caches below, so workers never
contend, and a graph object compiles once per process (the runner keeps a
spec-keyed scenario cache so shards over the same spec really do share one
graph object — these caches key by identity).  Workers call
:func:`clear_prepared_caches` when they start so that fork-inherited parent
state cannot leak into their measurements, and :func:`prepared_cache_info`
exposes the cache sizes and hit counters for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.kernel_store import (
    LRUCache,
    configure_kernel_store,
    kernel_store,
)
from repro.core.routing import (
    RouteOutcome,
    RouteResult,
    _header_bits,
    default_provider,
)
from repro.core.universal import SequenceProvider
from repro.core.walk_kernel import CompiledWalk
from repro.deprecation import warn_once
from repro.errors import RoutingError
from repro.graphs.degree_reduction import DegreeReducedGraph, reduce_to_three_regular
from repro.graphs.labeled_graph import LabeledGraph

# NOTE: repro.network.dynamics is imported lazily inside PreparedSchedule.
# A module-level import would close the cycle repro.core/__init__ -> engine ->
# routing -> repro.network/__init__ -> dynamics -> repro.core/__init__.

__all__ = [
    "PreparedNetwork",
    "PreparedSchedule",
    "WalkTrace",
    "clear_prepared_caches",
    "configure_kernel_store",
    "kernel_store",
    "prepare",
    "prepare_schedule",
    "prepared_cache_info",
    "route_many",
    "route_many_multi",
]

#: Per-engine bound on cached (provider, bound) offset tuples; CountNodes'
#: doubling loop needs ~log2(n) live bounds per provider, so 32 is generous.
_OFFSETS_CACHE_LIMIT = 32

#: Automatic ``route_many`` dispatch: the lockstep kernel pays a fixed NumPy
#: per-step overhead, so it wins only when the scalar work it replaces is
#: large — which scales with the batch size *and* the walk length (itself
#: governed by the reduced-graph size).  The auto policy therefore requires
#: both a minimum batch and a minimum ``batch x kernel-vertices`` product
#: (calibrated by measurement: a 64-pair batch breaks even around a 12x12
#: grid, whose kernel has ~530 virtual vertices).  The thresholds only steer
#: the *default* — ``lockstep=True``/``False`` overrides them; results are
#: identical on both paths.
_LOCKSTEP_AUTO_MIN_STATIC = 32
_LOCKSTEP_AUTO_MIN_SCHEDULE = 32
_LOCKSTEP_AUTO_MIN_WORK = 32_768


def _use_lockstep(
    requested: Optional[bool], batch_size: int, minimum: int, kernel_size: int
) -> bool:
    """Resolve the ``lockstep`` tri-state against NumPy, batch and walk size."""
    from repro.core.batch_kernel import HAVE_NUMPY

    if not HAVE_NUMPY or batch_size == 0:
        return False
    if requested is None:
        return (
            batch_size >= minimum
            and batch_size * kernel_size >= _LOCKSTEP_AUTO_MIN_WORK
        )
    return bool(requested)


class PreparedNetwork:
    """All per-graph routing state, computed once and shared by every call.

    Parameters
    ----------
    graph:
        The physical network graph.  It is reduced to 3-regular form and
        compiled into the array kernel immediately.
    default_provider:
        Exploration-sequence provider used when a call does not pass one
        (defaults to the library-wide shared provider).
    namespace_size:
        Default namespace for header-size accounting; ``None`` means the
        number of vertices, matching :func:`repro.core.routing.route`.
    kernel:
        Pre-compiled walk kernel for ``graph``.  ``None`` (the default) asks
        the process-wide :class:`~repro.core.kernel_store.KernelStore`, which
        serves it from its disk tier when one is configured and compiles it
        otherwise — that is how pool workers and restarts skip recompilation.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        default_provider_: Optional[SequenceProvider] = None,
        namespace_size: Optional[int] = None,
        kernel: Optional[CompiledWalk] = None,
    ) -> None:
        self._graph = graph
        self._default_provider = (
            default_provider_ if default_provider_ is not None else default_provider()
        )
        self._namespace = (
            namespace_size if namespace_size is not None else max(1, graph.num_vertices)
        )
        if kernel is None:
            kernel = kernel_store().kernel_for(graph)
        self._kernel = kernel
        #: ``None`` when the kernel came from the disk tier (the reduction
        #: object is not persisted); recomputed lazily by :attr:`reduction`
        #: for the few callers that need it (verbose protocols).
        self._reduction = kernel.reduction
        #: (id(provider), bound) -> (provider, offsets); the provider is kept
        #: so its id cannot be recycled while the entry lives.  LRU-bounded so
        #: sweeps that create a fresh provider per trial cannot pin an
        #: unbounded pile of providers and offset tuples on a cached engine.
        self._offsets_cache: LRUCache = LRUCache(_OFFSETS_CACHE_LIMIT)
        self._original_components: Optional[Dict[int, FrozenSet[int]]] = None

    # ------------------------------------------------------------------ #
    # Shared state accessors
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> LabeledGraph:
        """The physical graph this engine was prepared for."""
        return self._graph

    @property
    def reduction(self) -> DegreeReducedGraph:
        """The Fig. 1 degree reduction (recomputed lazily after a disk load).

        An engine whose kernel came from the kernel store's disk tier does
        not carry the reduction object — the persisted arrays are all the
        walk needs.  The reduction is deterministic per rotation map, so
        recomputing it here yields exactly the structure the kernel was
        compiled from.
        """
        if self._reduction is None:
            self._reduction = reduce_to_three_regular(self._graph)
        return self._reduction

    @property
    def kernel(self) -> CompiledWalk:
        """The flat-array walk kernel over the reduced graph."""
        return self._kernel

    def resolve_size_bound(self, source: int, size_bound: Optional[int] = None) -> int:
        """Bound on the reduced component size used to pick ``T_n``.

        When the caller does not supply one, the true size of the source's
        reduced component — the quantity Algorithm ``CountNodes`` (Section 4)
        discovers — is read from the precomputed component table in O(1).
        """
        if size_bound is not None:
            if size_bound < 1:
                raise RoutingError("size_bound must be positive")
            return size_bound
        return self._kernel.component_size(self._kernel.gateway(source))

    def offsets_for(
        self, bound: int, provider: Optional[SequenceProvider] = None
    ) -> Sequence[int]:
        """Raw offset tuple of ``T_bound``, materialised once per provider."""
        provider = provider if provider is not None else self._default_provider
        key = (id(provider), bound)
        entry = self._offsets_cache.get(key)
        if entry is not None:
            return entry[1]
        sequence = provider.sequence_for(bound)
        raw = getattr(sequence, "offsets", None)
        offsets = raw() if callable(raw) else tuple(
            sequence[i] for i in range(len(sequence))
        )
        self._offsets_cache.put(key, (provider, offsets))
        return offsets

    def original_component(self, vertex: int) -> FrozenSet[int]:
        """Connected component of ``vertex`` in the *original* graph (cached)."""
        if self._original_components is None:
            components: Dict[int, FrozenSet[int]] = {}
            graph = self._graph
            seen = set()
            for start in graph.vertices:
                if start in seen:
                    continue
                stack = [start]
                members = {start}
                while stack:
                    v = stack.pop()
                    for port in range(graph.degree(v)):
                        w, _ = graph.rotation(v, port)
                        if w not in members:
                            members.add(w)
                            stack.append(w)
                frozen = frozenset(members)
                seen |= members
                for member in members:
                    components[member] = frozen
            self._original_components = components
        return self._original_components[vertex]

    def _require_source(self, source: int) -> None:
        if not self._graph.has_vertex(source):
            raise RoutingError(f"source {source!r} is not a vertex of the graph")

    # ------------------------------------------------------------------ #
    # Routing (the hot path)
    # ------------------------------------------------------------------ #

    def route(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
    ) -> RouteResult:
        """Run Algorithm ``Route`` against the prepared state.

        Same contract and same results as :func:`repro.core.routing.route`
        (which is now a thin wrapper over this method); only the constant
        factor differs.
        """
        self._require_source(source)
        kernel = self._kernel
        gateway = kernel.gateway(source)
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        length = len(offsets)
        namespace = namespace_size if namespace_size is not None else self._namespace

        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = gateway, start_port
        index = 0
        forward_steps = 0
        physical_hops = 0
        target_found_at: Optional[int] = None

        # Forward phase: follow the sequence until the target is met or the
        # sequence is exhausted (step rule identical to the seed walker).
        while True:
            current_owner = owner[vertex]
            if current_owner == target:
                outcome = RouteOutcome.SUCCESS
                target_found_at = forward_steps
                break
            if index >= length:
                outcome = RouteOutcome.FAILURE
                break
            edge = 3 * vertex + (entry + offsets[index]) % 3
            vertex = next_vertex[edge]
            entry = next_port[edge]
            index += 1
            forward_steps += 1
            if owner[vertex] != current_owner:
                physical_hops += 1

        # Backward phase: retrace the walk (reversibility, Section 2) until a
        # virtual node of the source is reached, carrying the status.
        backward_steps = 0
        while owner[vertex] != source and index > 0:
            edge = 3 * vertex + entry
            previous_vertex = next_vertex[edge]
            entry = (next_port[edge] - offsets[index - 1]) % 3
            index -= 1
            backward_steps += 1
            if owner[previous_vertex] != owner[vertex]:
                physical_hops += 1
            vertex = previous_vertex
        if owner[vertex] != source:
            raise RoutingError("backtracking failed to return to the source")

        return RouteResult(
            outcome=outcome,
            delivered=outcome is RouteOutcome.SUCCESS,
            source=source,
            target=target,
            size_bound=bound,
            sequence_length=length,
            forward_virtual_steps=forward_steps,
            backward_virtual_steps=backward_steps,
            physical_hops=physical_hops,
            target_found_at_step=target_found_at,
            header_bits=_header_bits(namespace, length),
        )

    def route_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
        lockstep: Optional[bool] = None,
    ) -> List[RouteResult]:
        """Route every ``(source, target)`` pair against the shared state.

        This is the batch API the repeated-route workloads should use: one
        engine build, then one pass over the compiled walk kernel.  Batches
        large enough for vectorization to pay off (both a minimum batch size
        and a minimum batch x kernel-size work product — small batches and
        short walks are faster scalar) run on the NumPy lockstep kernel
        (:class:`repro.core.batch_kernel.BatchedWalk` — all walks advance one
        synchronous step at a time with one fused gather per step); small
        batches, and every batch when NumPy is absent, run the scalar loop
        :meth:`reference_route_many`, the executable specification.  Results
        are bit-for-bit identical either way (the ``batch-parity``
        conformance invariant and ``benchmarks/bench_batch.py`` assert it).

        ``lockstep`` forces the choice: ``True`` routes through the batched
        kernel whenever NumPy is available (no size threshold), ``False``
        always uses the scalar reference, ``None`` (default) picks
        automatically.
        """
        pairs = list(pairs)
        if _use_lockstep(
            lockstep, len(pairs), _LOCKSTEP_AUTO_MIN_STATIC, self._kernel.num_vertices
        ):
            return self._route_many_batched(
                pairs,
                provider=provider,
                size_bound=size_bound,
                start_port=start_port,
                namespace_size=namespace_size,
            )
        return self.reference_route_many(
            pairs,
            provider=provider,
            size_bound=size_bound,
            start_port=start_port,
            namespace_size=namespace_size,
        )

    def reference_route_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
    ) -> List[RouteResult]:
        """The scalar batch loop — the executable specification of ``route_many``.

        One :meth:`route` call per pair over the compiled kernel.  The
        lockstep batched path must match this list element for element; it is
        also the automatic fallback when NumPy is unavailable or the batch is
        too small for vectorization to pay off.
        """
        return [
            self.route(
                source,
                target,
                provider=provider,
                size_bound=size_bound,
                start_port=start_port,
                namespace_size=namespace_size,
            )
            for source, target in pairs
        ]

    def _route_many_batched(
        self,
        pairs: List[Tuple[int, int]],
        provider: Optional[SequenceProvider],
        size_bound: Optional[int],
        start_port: int,
        namespace_size: Optional[int],
    ) -> List[RouteResult]:
        """Batch body: group pairs by size bound, run the lockstep kernel.

        Pairs whose walks exceed the kernel's trajectory buffer cap are
        finished on the scalar kernel — same results, bounded memory.
        """
        from repro.core.batch_kernel import batched_walk_for

        namespace = namespace_size if namespace_size is not None else self._namespace
        for source in {source for source, _ in pairs}:
            self._require_source(source)
        groups: Dict[int, List[int]] = {}
        for index, (source, _target) in enumerate(pairs):
            bound = self.resolve_size_bound(source, size_bound)
            groups.setdefault(bound, []).append(index)
        stepper = batched_walk_for(self._kernel)
        results: List[Optional[RouteResult]] = [None] * len(pairs)
        for bound, indices in groups.items():
            offsets = self.offsets_for(bound, provider)
            length = len(offsets)
            header_bits = _header_bits(namespace, length)
            group_pairs = [pairs[index] for index in indices]
            accounts, unresolved = stepper.run(
                group_pairs, offsets, start_port=start_port
            )
            for local_index, account in accounts.items():
                index = indices[local_index]
                source, target = pairs[index]
                results[index] = RouteResult(
                    outcome=(
                        RouteOutcome.SUCCESS if account.success else RouteOutcome.FAILURE
                    ),
                    delivered=account.success,
                    source=source,
                    target=target,
                    size_bound=bound,
                    sequence_length=length,
                    forward_virtual_steps=account.forward_steps,
                    backward_virtual_steps=account.backward_steps,
                    physical_hops=account.physical_hops,
                    target_found_at_step=account.target_found_at,
                    header_bits=header_bits,
                )
            for local_index in unresolved:
                index = indices[local_index]
                source, target = pairs[index]
                results[index] = self.route(
                    source,
                    target,
                    provider=provider,
                    size_bound=size_bound,
                    start_port=start_port,
                    namespace_size=namespace_size,
                )
        return results

    # ------------------------------------------------------------------ #
    # Walks shared with the sibling algorithms
    # ------------------------------------------------------------------ #

    def broadcast_walk(
        self,
        source: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
    ) -> Tuple[int, int, FrozenSet[int], int]:
        """Forward broadcast walk; returns ``(bound, length, reached, hops)``.

        ``reached`` is the set of original vertices visited, ``hops`` the
        number of cluster-leaving (physical) steps — exactly the quantities
        :func:`repro.core.broadcast.broadcast` reports.
        """
        self._require_source(source)
        kernel = self._kernel
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = kernel.gateway(source), start_port
        reached = {source}
        add = reached.add
        physical_hops = 0
        for offset in offsets:
            edge = 3 * vertex + (entry + offset) % 3
            nxt = next_vertex[edge]
            if owner[nxt] != owner[vertex]:
                physical_hops += 1
            entry = next_port[edge]
            vertex = nxt
            add(owner[vertex])
        return bound, len(offsets), frozenset(reached), physical_hops

    def connectivity_walk(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
    ) -> Tuple[bool, int, int, int]:
        """Forward phase only; returns ``(connected, steps, length, bound)``."""
        self._require_source(source)
        kernel = self._kernel
        gateway = kernel.gateway(source)
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = gateway, start_port
        if owner[vertex] == target:
            return True, 0, len(offsets), bound
        steps = 0
        for offset in offsets:
            edge = 3 * vertex + (entry + offset) % 3
            vertex = next_vertex[edge]
            entry = next_port[edge]
            steps += 1
            if owner[vertex] == target:
                return True, steps, len(offsets), bound
        return False, steps, len(offsets), bound

    # ------------------------------------------------------------------ #
    # Traced routing (golden-trace regression support)
    # ------------------------------------------------------------------ #

    def route_with_trace(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
    ) -> Tuple[RouteResult, "WalkTrace"]:
        """Run :meth:`route` while recording every walk state.

        Returns the exact :class:`~repro.core.routing.RouteResult` of a plain
        :meth:`route` call together with the full ``(virtual vertex, entry
        port)`` state sequence of both phases.  All outcome/accounting logic
        lives in :meth:`route`; the trace is reconstructed afterwards by
        replaying the walk's step counts through the kernel, so the two can
        never drift apart.  The golden-trace regression tests serialize these
        sequences into ``tests/data/`` and assert the engine reproduces them
        bit for bit across refactors.
        """
        result = self.route(
            source,
            target,
            provider=provider,
            size_bound=size_bound,
            start_port=start_port,
            namespace_size=namespace_size,
        )
        kernel = self._kernel
        offsets = self.offsets_for(result.size_bound, provider)

        vertex, entry = kernel.gateway(source), start_port
        forward_states: List[Tuple[int, int]] = [(vertex, entry)]
        for index in range(result.forward_virtual_steps):
            vertex, entry = kernel.step_forward(vertex, entry, offsets[index])
            forward_states.append((vertex, entry))

        backward_states: List[Tuple[int, int]] = []
        index = result.forward_virtual_steps
        for _ in range(result.backward_virtual_steps):
            vertex, entry = kernel.step_backward(vertex, entry, offsets[index - 1])
            index -= 1
            backward_states.append((vertex, entry))

        return result, WalkTrace(
            forward=tuple(forward_states), backward=tuple(backward_states)
        )


@dataclass(frozen=True)
class WalkTrace:
    """Full ``(virtual vertex, entry port)`` state sequence of one routing walk.

    ``forward`` lists every state of the forward phase, the starting state
    included; ``backward`` lists the state reached after each backtracking
    step.  Together they pin down the walk completely: two runs that agree on
    both tuples took identical steps through the reduced graph.
    """

    forward: Tuple[Tuple[int, int], ...]
    backward: Tuple[Tuple[int, int], ...]


# ---------------------------------------------------------------------- #
# Shared engine cache (the kernel store's memory tier)
# ---------------------------------------------------------------------- #
# Engines are keyed by ``id(graph)`` in the store's bounded engine LRU.
# Entries hold the graph strongly, so an id can never be recycled while its
# entry is alive; the bound keeps long many-graph runs (sweeps, hypothesis
# tests) from accumulating state, and evictions are counted in
# ``prepared_cache_info()``.  Beneath the LRU, a compile goes through
# ``KernelStore.kernel_for`` — which consults the content-addressed disk
# tier first when one is configured (``configure_kernel_store`` /
# ``REPRO_KERNEL_CACHE_DIR``).


def prepare(network_or_graph: object) -> PreparedNetwork:
    """Return the shared :class:`PreparedNetwork` for a graph (built on demand).

    Accepts either a :class:`~repro.graphs.labeled_graph.LabeledGraph` or
    anything carrying one as a ``graph`` attribute (e.g.
    :class:`~repro.network.adhoc.AdHocNetwork`).  Graphs are immutable, so the
    cache key is object identity; repeated calls for the same graph are O(1).
    """
    if isinstance(network_or_graph, LabeledGraph):
        graph = network_or_graph
    else:
        graph = getattr(network_or_graph, "graph", None)
        if not isinstance(graph, LabeledGraph):
            raise RoutingError(
                f"cannot prepare {network_or_graph!r}: expected a LabeledGraph "
                "or an object with a .graph attribute"
            )
    cache = kernel_store().engines
    key = id(graph)
    engine = cache.peek(key)
    if engine is not None and engine.graph is graph:
        cache.touch(key)
        return engine
    cache.record_miss()
    engine = PreparedNetwork(graph)
    cache.put(key, engine)
    return engine


def route_many(
    graph: LabeledGraph,
    pairs: Iterable[Tuple[int, int]],
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> List[RouteResult]:
    """Batch-route ``pairs`` on ``graph`` through the shared prepared engine.

    Deprecated free-function form: new code should submit a
    :class:`repro.api.RouteBatchRequest` through :class:`repro.api.Session`
    (or call :meth:`PreparedNetwork.route_many` on a prepared engine, which
    is what both paths execute).  Emits one :class:`DeprecationWarning` per
    process; results are unchanged.
    """
    warn_once(
        "engine.route_many",
        "repro.core.engine.route_many(...) is deprecated; submit a "
        "repro.api.RouteBatchRequest through repro.api.Session (or use "
        "PreparedNetwork.route_many) instead",
    )
    return prepare(graph).route_many(
        pairs,
        provider=provider,
        size_bound=size_bound,
        start_port=start_port,
        namespace_size=namespace_size,
    )


# ---------------------------------------------------------------------- #
# Schedule-aware engine (dynamic-topology extension)
# ---------------------------------------------------------------------- #


class PreparedSchedule:
    """All per-schedule routing state, compiled once and resumed across switches.

    **Paper vs. extension.**  The paper's model — and every guarantee it
    proves — is *static*: "the graph does not change during the delivery
    process".  This class belongs to the dynamic-topology *extension* of
    :mod:`repro.network.dynamics`, which studies how the walk behaves when
    that assumption is violated; nothing here is a claim made by the paper.

    What is prepared, exactly once per schedule:

    * every snapshot of the :class:`~repro.network.dynamics.TopologySchedule`
      is compiled into a flat-array walk kernel via the shared per-graph
      engine cache (:func:`prepare`), so a snapshot that also serves static
      routes reuses the same compilation;
    * snapshots that are *rotation-identical* (equal as port-labeled graphs,
      not merely same edge set — the walk consults port labels) share one
      kernel even when they are distinct objects;
    * the offset tuple of the exploration sequence is materialised once per
      ``(provider, bound)`` through the snapshot-0 engine's cache.

    :meth:`route` then replays the schedule walk by *resuming* the flat-array
    walk across switch-overs: at each switch the current virtual position is
    translated between kernels in O(1) (owner + carried-port offset) instead
    of re-deriving the degree reduction, which is what the pre-engine
    implementation paid on every call.  Results are identical to
    :func:`repro.network.dynamics.reference_route_over_schedule`, the
    original implementation kept as the executable specification (see the
    parity tests in ``tests/test_dynamics.py`` and the speedup benchmark in
    ``benchmarks/bench_schedule.py``).
    """

    def __init__(
        self,
        schedule: "TopologySchedule",
        default_provider_: Optional[SequenceProvider] = None,
    ) -> None:
        # Imported lazily to keep the module import graph acyclic (see the
        # note next to the module imports).
        from repro.network.dynamics import validate_schedule

        validate_schedule(schedule)
        self._schedule = schedule
        self._default_provider = (
            default_provider_ if default_provider_ is not None else default_provider()
        )
        # Rotation-identical snapshots (LabeledGraph equality is rotation-map
        # equality) share one prepared engine; the first instance of each
        # distinct graph goes through the shared per-graph cache.
        engines_by_graph: Dict[LabeledGraph, PreparedNetwork] = {}
        engines: List[PreparedNetwork] = []
        for graph in schedule.snapshots:
            engine = engines_by_graph.get(graph)
            if engine is None:
                engine = prepare(graph)
                engines_by_graph[graph] = engine
            engines.append(engine)
        self._engines = engines
        self._kernels = [engine.kernel for engine in engines]
        self._num_compiled = len(engines_by_graph)
        #: Lazily built lockstep stepper for the batched route_many path.
        self._batched_stepper = None

    # ------------------------------------------------------------------ #
    # Shared state accessors
    # ------------------------------------------------------------------ #

    @property
    def schedule(self) -> "TopologySchedule":
        """The topology schedule this engine was prepared for."""
        return self._schedule

    @property
    def num_snapshots(self) -> int:
        """Number of snapshots in the schedule."""
        return len(self._schedule.snapshots)

    @property
    def num_compiled_kernels(self) -> int:
        """Distinct kernels actually compiled (shared between equal snapshots)."""
        return self._num_compiled

    def snapshot_engine(self, index: int) -> PreparedNetwork:
        """The prepared static engine serving snapshot ``index``."""
        return self._engines[index]

    # ------------------------------------------------------------------ #
    # Routing over the schedule
    # ------------------------------------------------------------------ #

    def route(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
    ):
        """Route ``source -> target`` while the topology follows the schedule.

        Same contract and same results as
        :func:`repro.network.dynamics.route_over_schedule` (which delegates
        here); only the constant factor differs.
        """
        from repro.network.dynamics import DynamicOutcome, DynamicRouteResult

        schedule = self._schedule
        snapshots = schedule.snapshots
        if not snapshots[0].has_vertex(source):
            raise RoutingError(f"source {source!r} is not a vertex of the network")
        engine0 = self._engines[0]
        bound = engine0.resolve_size_bound(source, size_bound)
        offsets = engine0.offsets_for(
            bound, provider if provider is not None else self._default_provider
        )
        length = len(offsets)

        switch_times = schedule.switch_times
        kernels = self._kernels
        num_snapshots = len(snapshots)

        active = 0
        active_graph = snapshots[0]
        kernel = kernels[0]
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex = kernel.gateway(source)
        entry = 0
        current_original = source
        switches_survived = 0
        steps = 0
        direction_forward = True
        status_failure = False

        for time in range(2 * length + 2):
            # Activate every snapshot whose switch time has passed.  A switch
            # to a *different graph object* translates the walk position into
            # the new kernel (owner + carried-port offset, both O(1)); a
            # schedule that re-activates the same object is not a switch,
            # matching the reference implementation.
            while active + 1 < num_snapshots and time >= switch_times[active + 1]:
                active += 1
                new_graph = snapshots[active]
                if new_graph is active_graph:
                    continue
                new_kernel = kernels[active]
                switches_survived += 1
                translated = kernel.translate_virtual(new_kernel, vertex)
                if translated is None:
                    return DynamicRouteResult(
                        outcome=DynamicOutcome.STRANDED,
                        steps_taken=steps,
                        switches_survived=switches_survived,
                        sound=False,
                        detail=(
                            f"degree of node {current_original} changed under the message"
                        ),
                    )
                vertex = translated
                active_graph = new_graph
                kernel = new_kernel
                next_vertex = kernel.next_vertex
                next_port = kernel.next_port
                owner = kernel.owner

            if direction_forward:
                if current_original == target:
                    return DynamicRouteResult(
                        outcome=DynamicOutcome.DELIVERED,
                        steps_taken=steps,
                        switches_survived=switches_survived,
                        sound=True,
                    )
                if steps >= length:
                    direction_forward = False
                    status_failure = True
                    continue
                edge = 3 * vertex + (entry + offsets[steps]) % 3
                vertex = next_vertex[edge]
                entry = next_port[edge]
                steps += 1
            else:
                if current_original == source or steps == 0:
                    sound = (
                        not schedule.always_connected(source, target)
                        if status_failure
                        else True
                    )
                    return DynamicRouteResult(
                        outcome=DynamicOutcome.REPORTED_FAILURE,
                        steps_taken=steps,
                        switches_survived=switches_survived,
                        sound=sound,
                        detail=(
                            ""
                            if sound
                            else "failure reported although a path existed throughout"
                        ),
                    )
                edge = 3 * vertex + entry
                previous_vertex = next_vertex[edge]
                entry = (next_port[edge] - offsets[steps - 1]) % 3
                steps -= 1
                vertex = previous_vertex
            current_original = owner[vertex]

        return DynamicRouteResult(
            outcome=DynamicOutcome.STRANDED,
            steps_taken=steps,
            switches_survived=switches_survived,
            sound=False,
            detail="walk did not terminate within its budget",
        )

    def route_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        lockstep: Optional[bool] = None,
    ) -> List[object]:
        """Route every ``(source, target)`` pair against the prepared schedule.

        The batch API for dynamic workloads: one compilation of every
        snapshot, then one pass over the resumed flat-array walk.  Large
        batches run on the NumPy lockstep stepper
        (:class:`repro.core.batch_kernel.ScheduleBatchedWalk`: shared global
        clock, per-walk ``(vertex, entry port, phase)`` state vectors,
        switch-overs translated through precomputed tables); small batches,
        and every batch when NumPy is absent, run the scalar loop
        :meth:`reference_route_many`.  Results are identical either way (the
        dynamic ``batch-parity`` conformance invariant asserts it).
        ``lockstep`` forces the choice exactly as in
        :meth:`PreparedNetwork.route_many`.
        """
        pairs = list(pairs)
        if _use_lockstep(
            lockstep,
            len(pairs),
            _LOCKSTEP_AUTO_MIN_SCHEDULE,
            self._kernels[0].num_vertices,
        ):
            return self._route_many_batched(
                pairs, provider=provider, size_bound=size_bound
            )
        return self.reference_route_many(
            pairs, provider=provider, size_bound=size_bound
        )

    def reference_route_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
    ) -> List[object]:
        """The scalar batch loop — the executable specification of ``route_many``."""
        return [
            self.route(source, target, provider=provider, size_bound=size_bound)
            for source, target in pairs
        ]

    def _schedule_stepper(self):
        """The shared lockstep stepper for this schedule (built on demand)."""
        from repro.core.batch_kernel import ScheduleBatchedWalk, batched_walk_for

        if self._batched_stepper is None:
            self._batched_stepper = ScheduleBatchedWalk(
                steppers=[batched_walk_for(kernel) for kernel in self._kernels],
                snapshots=self._schedule.snapshots,
                switch_times=self._schedule.switch_times,
                gateway_of=self._kernels[0].gateway_of,
            )
        return self._batched_stepper

    def _route_many_batched(
        self,
        pairs: List[Tuple[int, int]],
        provider: Optional[SequenceProvider],
        size_bound: Optional[int],
    ) -> List[object]:
        """Batch body: group pairs by size bound, run the schedule stepper."""
        from repro.core import batch_kernel
        from repro.network.dynamics import DynamicOutcome, DynamicRouteResult

        base = self._schedule.snapshots[0]
        for source in {source for source, _ in pairs}:
            if not base.has_vertex(source):
                raise RoutingError(
                    f"source {source!r} is not a vertex of the network"
                )
        engine0 = self._engines[0]
        groups: Dict[int, List[int]] = {}
        for index, (source, _target) in enumerate(pairs):
            bound = engine0.resolve_size_bound(source, size_bound)
            groups.setdefault(bound, []).append(index)
        stepper = self._schedule_stepper()
        results: List[Optional[object]] = [None] * len(pairs)
        soundness_cache: Dict[Tuple[int, int], bool] = {}
        for bound, indices in groups.items():
            offsets = engine0.offsets_for(
                bound, provider if provider is not None else self._default_provider
            )
            np_offsets = batch_kernel.np_offsets_for(offsets)
            accounts = stepper.run(
                [pairs[index][0] for index in indices],
                [pairs[index][1] for index in indices],
                offsets,
                np_offsets,
            )
            for local_index, account in enumerate(accounts):
                index = indices[local_index]
                source, target = pairs[index]
                if account.code == batch_kernel.SCHEDULE_DELIVERED:
                    result = DynamicRouteResult(
                        outcome=DynamicOutcome.DELIVERED,
                        steps_taken=account.steps_taken,
                        switches_survived=account.switches_survived,
                        sound=True,
                    )
                elif account.code == batch_kernel.SCHEDULE_REPORTED_FAILURE:
                    if account.status_failure:
                        key = (source, target)
                        sound = soundness_cache.get(key)
                        if sound is None:
                            sound = not self._schedule.always_connected(source, target)
                            soundness_cache[key] = sound
                    else:
                        sound = True
                    result = DynamicRouteResult(
                        outcome=DynamicOutcome.REPORTED_FAILURE,
                        steps_taken=account.steps_taken,
                        switches_survived=account.switches_survived,
                        sound=sound,
                        detail=(
                            ""
                            if sound
                            else "failure reported although a path existed throughout"
                        ),
                    )
                elif account.code == batch_kernel.SCHEDULE_STRANDED_DEGREE:
                    result = DynamicRouteResult(
                        outcome=DynamicOutcome.STRANDED,
                        steps_taken=account.steps_taken,
                        switches_survived=account.switches_survived,
                        sound=False,
                        detail=(
                            f"degree of node {account.stranded_owner} "
                            "changed under the message"
                        ),
                    )
                else:
                    result = DynamicRouteResult(
                        outcome=DynamicOutcome.STRANDED,
                        steps_taken=account.steps_taken,
                        switches_survived=account.switches_survived,
                        sound=False,
                        detail="walk did not terminate within its budget",
                    )
                results[index] = result
        return results


# Prepared schedules are keyed by ``id(schedule)`` in the store's bounded
# schedule LRU; entries hold the schedule strongly, so an id can never be
# recycled while its entry is alive.


def prepare_schedule(schedule: "TopologySchedule") -> PreparedSchedule:
    """Return the shared :class:`PreparedSchedule` for a schedule (built on demand).

    Schedules are immutable, so the cache key is object identity; repeated
    calls for the same schedule object are O(1).  The per-snapshot kernels
    additionally land in the same per-graph cache :func:`prepare` maintains,
    so a graph that appears both as a snapshot and as a static routing target
    is compiled exactly once either way.
    """
    cache = kernel_store().schedules
    key = id(schedule)
    entry = cache.peek(key)
    if entry is not None and entry.schedule is schedule:
        cache.touch(key)
        return entry
    cache.record_miss()
    entry = PreparedSchedule(schedule)
    cache.put(key, entry)
    return entry


# ---------------------------------------------------------------------- #
# Multi-graph batch routing
# ---------------------------------------------------------------------- #


def route_many_multi(
    tasks: Sequence[Tuple[object, Sequence[Tuple[int, int]], Optional[int]]],
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    lockstep: Optional[bool] = None,
) -> List[List[RouteResult]]:
    """Route several per-graph batches as **one** lockstep run.

    ``tasks`` is a sequence of ``(engine_or_graph, pairs, namespace_size)``
    triples — typically one per sweep scenario.  All tasks' pairs are grouped
    into per-(graph, size-bound) jobs and advanced together over the stacked
    transition tensor of :class:`repro.core.batch_kernel.MultiGraphWalk`, so
    an entire sweep shard executes as a handful of NumPy calls instead of a
    per-scenario Python loop.  Results come back as one
    :class:`~repro.core.routing.RouteResult` list per task, element-for-
    element identical to calling each engine's ``route_many`` (and therefore
    to the scalar ``reference_route_many`` specification) — the multi-graph
    parity tests and ``benchmarks/bench_multigraph.py`` assert it.

    ``lockstep`` carries the usual tri-state: ``None`` auto-dispatches on the
    *aggregate* batch size and work product (this is the whole point — many
    small per-scenario batches that would each fall below the lockstep
    threshold clear it together), ``True`` forces the stacked kernel,
    ``False`` falls back to per-task ``route_many`` with ``lockstep=False``.
    """
    from repro.core.batch_kernel import HAVE_NUMPY

    normalized: List[Tuple[PreparedNetwork, List[Tuple[int, int]], Optional[int]]] = []
    for engine_or_graph, pairs, namespace_size in tasks:
        engine = (
            engine_or_graph
            if isinstance(engine_or_graph, PreparedNetwork)
            else prepare(engine_or_graph)
        )
        normalized.append((engine, list(pairs), namespace_size))

    total_pairs = sum(len(pairs) for _engine, pairs, _ns in normalized)
    aggregate_work = sum(
        len(pairs) * engine.kernel.num_vertices
        for engine, pairs, _ns in normalized
    )
    if lockstep is None:
        use_stacked = (
            HAVE_NUMPY
            and total_pairs >= _LOCKSTEP_AUTO_MIN_STATIC
            and aggregate_work >= _LOCKSTEP_AUTO_MIN_WORK
        )
    else:
        use_stacked = bool(lockstep) and HAVE_NUMPY and total_pairs > 0
    if not use_stacked:
        return [
            engine.route_many(
                pairs,
                provider=provider,
                size_bound=size_bound,
                start_port=start_port,
                namespace_size=namespace_size,
                lockstep=lockstep,
            )
            for engine, pairs, namespace_size in normalized
        ]

    from repro.core.batch_kernel import batched_walk_for, multigraph_walk_for

    # One BatchedWalk per distinct kernel; one job per (task, size bound).
    steppers: List[object] = []
    stepper_index: Dict[int, int] = {}
    jobs: List[Tuple[int, List[Tuple[int, int]], Sequence[int]]] = []
    #: job -> (task index, task-local pair indices, bound, header_bits, length)
    job_meta: List[Tuple[int, List[int], int, int, int]] = []
    for task_index, (engine, pairs, namespace_size) in enumerate(normalized):
        namespace = (
            namespace_size if namespace_size is not None else engine._namespace
        )
        for source in {source for source, _ in pairs}:
            engine._require_source(source)
        groups: Dict[int, List[int]] = {}
        for pair_index, (source, _target) in enumerate(pairs):
            bound = engine.resolve_size_bound(source, size_bound)
            groups.setdefault(bound, []).append(pair_index)
        kernel_key = id(engine.kernel)
        graph_slot = stepper_index.get(kernel_key)
        if graph_slot is None:
            graph_slot = len(steppers)
            stepper_index[kernel_key] = graph_slot
            steppers.append(batched_walk_for(engine.kernel))
        for bound, indices in groups.items():
            offsets = engine.offsets_for(bound, provider)
            jobs.append((graph_slot, [pairs[i] for i in indices], offsets))
            job_meta.append(
                (
                    task_index,
                    indices,
                    bound,
                    _header_bits(namespace, len(offsets)),
                    len(offsets),
                )
            )

    multi = multigraph_walk_for(steppers)
    accounts, unresolved = multi.run(jobs, start_port=start_port)

    results: List[List[Optional[RouteResult]]] = [
        [None] * len(pairs) for _engine, pairs, _ns in normalized
    ]
    for (job_index, local_index), account in accounts.items():
        task_index, indices, bound, header_bits, length = job_meta[job_index]
        _engine, pairs, _ns = normalized[task_index]
        pair_index = indices[local_index]
        source, target = pairs[pair_index]
        results[task_index][pair_index] = RouteResult(
            outcome=(
                RouteOutcome.SUCCESS if account.success else RouteOutcome.FAILURE
            ),
            delivered=account.success,
            source=source,
            target=target,
            size_bound=bound,
            sequence_length=length,
            forward_virtual_steps=account.forward_steps,
            backward_virtual_steps=account.backward_steps,
            physical_hops=account.physical_hops,
            target_found_at_step=account.target_found_at,
            header_bits=header_bits,
        )
    for job_index, local_index in unresolved:
        task_index, indices = job_meta[job_index][0], job_meta[job_index][1]
        engine, pairs, namespace_size = normalized[task_index]
        pair_index = indices[local_index]
        source, target = pairs[pair_index]
        results[task_index][pair_index] = engine.route(
            source,
            target,
            provider=provider,
            size_bound=size_bound,
            start_port=start_port,
            namespace_size=namespace_size,
        )
    return results


# ---------------------------------------------------------------------- #
# Cache hooks for multi-process orchestration
# ---------------------------------------------------------------------- #


def prepared_cache_info() -> Dict[str, int]:
    """Sizes and hit/miss counters of the shared caches, for this process.

    Every process (the main one and each sweep worker) has its own caches, so
    the numbers describe local behaviour only; the sweep runner can surface
    them to verify that rotation-identical graphs really compiled once per
    process.  ``offset_entries`` totals the per-engine ``(provider, bound)``
    offset-tuple caches, so a session can see sequence materialisation cost
    too; :meth:`repro.api.Session.cache_info` merges these numbers with the
    session-scoped scenario-cache counters (the ``repro sweep`` summary line
    prints that merged view).

    The kernel store contributes its full tier picture: memory-LRU
    hit/miss/eviction counters for engines and schedules, ``kernel_compiles``
    (every actual ``CompiledWalk`` compilation in this process — zero on a
    fully warm start), and the disk-tier ``disk_hits`` / ``disk_misses`` /
    ``disk_saves`` / ``disk_errors`` counters when persistence is enabled.
    """
    from repro.core.batch_kernel import batch_cache_info

    store = kernel_store()
    info = store.info()
    info["offset_entries"] = sum(
        len(engine._offsets_cache) for engine in store.engines.values()
    )
    info["offset_hits"] = sum(
        engine._offsets_cache.hits for engine in store.engines.values()
    )
    info["offset_misses"] = sum(
        engine._offsets_cache.misses for engine in store.engines.values()
    )
    info["offset_evictions"] = sum(
        engine._offsets_cache.evictions for engine in store.engines.values()
    )
    info.update(batch_cache_info())
    return info


def clear_prepared_caches() -> None:
    """Drop every cached engine and schedule and reset the counters.

    The sweep runner's worker initialiser calls this so a worker forked from
    a warm parent starts from the same cold state as one spawned fresh —
    per-worker compile behaviour is then identical across start methods and
    the parent's cached graphs are not kept alive in every worker.  The
    library-wide default sequence provider's cache is dropped for the same
    reason; its sequences are deterministic, so nothing observable changes.

    Clearing also makes the kernel store re-read its environment
    configuration (``REPRO_KERNEL_CACHE_DIR`` / ``REPRO_KERNEL_CACHE_SIZE``),
    which is how pool workers adopt a disk tier configured in the parent and
    warm-start from persisted kernels instead of recompiling.
    """
    from repro.core.batch_kernel import clear_batch_caches

    kernel_store().clear()
    clear_batch_caches()
    shared_provider = default_provider()
    clear = getattr(shared_provider, "clear_cache", None)
    if callable(clear):
        clear()
