"""Prepared routing engine — amortise all topology-derived state across calls.

Every entry point of the seed code base (:func:`repro.core.routing.route`,
:func:`repro.core.routing.route_on_network`, counting, broadcasting, the
baselines and the CLI) used to recompute the same three things on every call:
the Fig. 1 degree reduction, the size of the source's reduced component, and a
dict-of-tuples walk over the reduced rotation map.  For a workload that routes
many messages over one static network — the paper's whole setting — that work
is pure overhead: the topology never changes between calls.

:class:`PreparedNetwork` computes all of it **once per graph**:

* the degree reduction (shared, immutable);
* the flat-array walk kernel (:class:`repro.core.walk_kernel.CompiledWalk`)
  that turns each walk step into two list indexes;
* the per-component size table that makes the ``CountNodes`` bound an O(1)
  lookup;
* a per-(provider, bound) cache of raw offset tuples so the exploration
  sequence is materialised exactly once.

It then serves unlimited :meth:`route` calls and the batch API
:meth:`route_many` against that shared state.  :func:`prepare` maintains a
small keyed cache so independent call sites (routing, counting, broadcast,
the distributed protocols, benchmarks) all land on the same engine for the
same graph object.

Results are bit-for-bit identical to the seed walkers: the kernel encodes the
same rotation map, the step rule is unchanged, and the header accounting uses
the same formulas.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.routing import (
    RouteOutcome,
    RouteResult,
    _header_bits,
    default_provider,
)
from repro.core.universal import SequenceProvider
from repro.core.walk_kernel import CompiledWalk
from repro.errors import RoutingError
from repro.graphs.degree_reduction import DegreeReducedGraph, reduce_to_three_regular
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["PreparedNetwork", "prepare", "route_many"]

#: Per-engine bound on cached (provider, bound) offset tuples; CountNodes'
#: doubling loop needs ~log2(n) live bounds per provider, so 32 is generous.
_OFFSETS_CACHE_LIMIT = 32


class PreparedNetwork:
    """All per-graph routing state, computed once and shared by every call.

    Parameters
    ----------
    graph:
        The physical network graph.  It is reduced to 3-regular form and
        compiled into the array kernel immediately.
    default_provider:
        Exploration-sequence provider used when a call does not pass one
        (defaults to the library-wide shared provider).
    namespace_size:
        Default namespace for header-size accounting; ``None`` means the
        number of vertices, matching :func:`repro.core.routing.route`.
    """

    def __init__(
        self,
        graph: LabeledGraph,
        default_provider_: Optional[SequenceProvider] = None,
        namespace_size: Optional[int] = None,
    ) -> None:
        self._graph = graph
        self._default_provider = (
            default_provider_ if default_provider_ is not None else default_provider()
        )
        self._namespace = (
            namespace_size if namespace_size is not None else max(1, graph.num_vertices)
        )
        self._reduction = reduce_to_three_regular(graph)
        self._kernel = CompiledWalk(self._reduction)
        #: (id(provider), bound) -> (provider, offsets); the provider is kept
        #: so its id cannot be recycled while the entry lives.  LRU-bounded so
        #: sweeps that create a fresh provider per trial cannot pin an
        #: unbounded pile of providers and offset tuples on a cached engine.
        self._offsets_cache: "OrderedDict[Tuple[int, int], Tuple[SequenceProvider, Tuple[int, ...]]]" = OrderedDict()
        self._original_components: Optional[Dict[int, FrozenSet[int]]] = None

    # ------------------------------------------------------------------ #
    # Shared state accessors
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> LabeledGraph:
        """The physical graph this engine was prepared for."""
        return self._graph

    @property
    def reduction(self) -> DegreeReducedGraph:
        """The cached Fig. 1 degree reduction."""
        return self._reduction

    @property
    def kernel(self) -> CompiledWalk:
        """The flat-array walk kernel over the reduced graph."""
        return self._kernel

    def resolve_size_bound(self, source: int, size_bound: Optional[int] = None) -> int:
        """Bound on the reduced component size used to pick ``T_n``.

        When the caller does not supply one, the true size of the source's
        reduced component — the quantity Algorithm ``CountNodes`` (Section 4)
        discovers — is read from the precomputed component table in O(1).
        """
        if size_bound is not None:
            if size_bound < 1:
                raise RoutingError("size_bound must be positive")
            return size_bound
        return self._kernel.component_size(self._kernel.gateway(source))

    def offsets_for(
        self, bound: int, provider: Optional[SequenceProvider] = None
    ) -> Sequence[int]:
        """Raw offset tuple of ``T_bound``, materialised once per provider."""
        provider = provider if provider is not None else self._default_provider
        key = (id(provider), bound)
        entry = self._offsets_cache.get(key)
        if entry is not None:
            self._offsets_cache.move_to_end(key)
            return entry[1]
        sequence = provider.sequence_for(bound)
        raw = getattr(sequence, "offsets", None)
        offsets = raw() if callable(raw) else tuple(
            sequence[i] for i in range(len(sequence))
        )
        self._offsets_cache[key] = (provider, offsets)
        while len(self._offsets_cache) > _OFFSETS_CACHE_LIMIT:
            self._offsets_cache.popitem(last=False)
        return offsets

    def original_component(self, vertex: int) -> FrozenSet[int]:
        """Connected component of ``vertex`` in the *original* graph (cached)."""
        if self._original_components is None:
            components: Dict[int, FrozenSet[int]] = {}
            graph = self._graph
            seen = set()
            for start in graph.vertices:
                if start in seen:
                    continue
                stack = [start]
                members = {start}
                while stack:
                    v = stack.pop()
                    for port in range(graph.degree(v)):
                        w, _ = graph.rotation(v, port)
                        if w not in members:
                            members.add(w)
                            stack.append(w)
                frozen = frozenset(members)
                seen |= members
                for member in members:
                    components[member] = frozen
            self._original_components = components
        return self._original_components[vertex]

    def _require_source(self, source: int) -> None:
        if not self._graph.has_vertex(source):
            raise RoutingError(f"source {source!r} is not a vertex of the graph")

    # ------------------------------------------------------------------ #
    # Routing (the hot path)
    # ------------------------------------------------------------------ #

    def route(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
    ) -> RouteResult:
        """Run Algorithm ``Route`` against the prepared state.

        Same contract and same results as :func:`repro.core.routing.route`
        (which is now a thin wrapper over this method); only the constant
        factor differs.
        """
        self._require_source(source)
        kernel = self._kernel
        gateway = kernel.gateway(source)
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        length = len(offsets)
        namespace = namespace_size if namespace_size is not None else self._namespace

        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = gateway, start_port
        index = 0
        forward_steps = 0
        physical_hops = 0
        target_found_at: Optional[int] = None

        # Forward phase: follow the sequence until the target is met or the
        # sequence is exhausted (step rule identical to the seed walker).
        while True:
            current_owner = owner[vertex]
            if current_owner == target:
                outcome = RouteOutcome.SUCCESS
                target_found_at = forward_steps
                break
            if index >= length:
                outcome = RouteOutcome.FAILURE
                break
            edge = 3 * vertex + (entry + offsets[index]) % 3
            vertex = next_vertex[edge]
            entry = next_port[edge]
            index += 1
            forward_steps += 1
            if owner[vertex] != current_owner:
                physical_hops += 1

        # Backward phase: retrace the walk (reversibility, Section 2) until a
        # virtual node of the source is reached, carrying the status.
        backward_steps = 0
        while owner[vertex] != source and index > 0:
            edge = 3 * vertex + entry
            previous_vertex = next_vertex[edge]
            entry = (next_port[edge] - offsets[index - 1]) % 3
            index -= 1
            backward_steps += 1
            if owner[previous_vertex] != owner[vertex]:
                physical_hops += 1
            vertex = previous_vertex
        if owner[vertex] != source:
            raise RoutingError("backtracking failed to return to the source")

        return RouteResult(
            outcome=outcome,
            delivered=outcome is RouteOutcome.SUCCESS,
            source=source,
            target=target,
            size_bound=bound,
            sequence_length=length,
            forward_virtual_steps=forward_steps,
            backward_virtual_steps=backward_steps,
            physical_hops=physical_hops,
            target_found_at_step=target_found_at,
            header_bits=_header_bits(namespace, length),
        )

    def route_many(
        self,
        pairs: Iterable[Tuple[int, int]],
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
        namespace_size: Optional[int] = None,
    ) -> List[RouteResult]:
        """Route every ``(source, target)`` pair against the shared state.

        This is the batch API the repeated-route workloads should use: one
        engine build, then a plain loop over the compiled walk kernel.
        """
        return [
            self.route(
                source,
                target,
                provider=provider,
                size_bound=size_bound,
                start_port=start_port,
                namespace_size=namespace_size,
            )
            for source, target in pairs
        ]

    # ------------------------------------------------------------------ #
    # Walks shared with the sibling algorithms
    # ------------------------------------------------------------------ #

    def broadcast_walk(
        self,
        source: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
    ) -> Tuple[int, int, FrozenSet[int], int]:
        """Forward broadcast walk; returns ``(bound, length, reached, hops)``.

        ``reached`` is the set of original vertices visited, ``hops`` the
        number of cluster-leaving (physical) steps — exactly the quantities
        :func:`repro.core.broadcast.broadcast` reports.
        """
        self._require_source(source)
        kernel = self._kernel
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = kernel.gateway(source), start_port
        reached = {source}
        add = reached.add
        physical_hops = 0
        for offset in offsets:
            edge = 3 * vertex + (entry + offset) % 3
            nxt = next_vertex[edge]
            if owner[nxt] != owner[vertex]:
                physical_hops += 1
            entry = next_port[edge]
            vertex = nxt
            add(owner[vertex])
        return bound, len(offsets), frozenset(reached), physical_hops

    def connectivity_walk(
        self,
        source: int,
        target: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        start_port: int = 0,
    ) -> Tuple[bool, int, int, int]:
        """Forward phase only; returns ``(connected, steps, length, bound)``."""
        self._require_source(source)
        kernel = self._kernel
        gateway = kernel.gateway(source)
        bound = self.resolve_size_bound(source, size_bound)
        offsets = self.offsets_for(bound, provider)
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner = kernel.owner

        vertex, entry = gateway, start_port
        if owner[vertex] == target:
            return True, 0, len(offsets), bound
        steps = 0
        for offset in offsets:
            edge = 3 * vertex + (entry + offset) % 3
            vertex = next_vertex[edge]
            entry = next_port[edge]
            steps += 1
            if owner[vertex] == target:
                return True, steps, len(offsets), bound
        return False, steps, len(offsets), bound


# ---------------------------------------------------------------------- #
# Shared engine cache
# ---------------------------------------------------------------------- #

#: Engines keyed by ``id(graph)``.  Entries hold the graph strongly, so an id
#: can never be recycled while its entry is alive; the bound keeps long
#: many-graph runs (sweeps, hypothesis tests) from accumulating state.
_ENGINE_CACHE: "OrderedDict[int, PreparedNetwork]" = OrderedDict()
_ENGINE_CACHE_LIMIT = 64


def prepare(network_or_graph: object) -> PreparedNetwork:
    """Return the shared :class:`PreparedNetwork` for a graph (built on demand).

    Accepts either a :class:`~repro.graphs.labeled_graph.LabeledGraph` or
    anything carrying one as a ``graph`` attribute (e.g.
    :class:`~repro.network.adhoc.AdHocNetwork`).  Graphs are immutable, so the
    cache key is object identity; repeated calls for the same graph are O(1).
    """
    if isinstance(network_or_graph, LabeledGraph):
        graph = network_or_graph
    else:
        graph = getattr(network_or_graph, "graph", None)
        if not isinstance(graph, LabeledGraph):
            raise RoutingError(
                f"cannot prepare {network_or_graph!r}: expected a LabeledGraph "
                "or an object with a .graph attribute"
            )
    key = id(graph)
    engine = _ENGINE_CACHE.get(key)
    if engine is not None and engine.graph is graph:
        _ENGINE_CACHE.move_to_end(key)
        return engine
    engine = PreparedNetwork(graph)
    _ENGINE_CACHE[key] = engine
    while len(_ENGINE_CACHE) > _ENGINE_CACHE_LIMIT:
        _ENGINE_CACHE.popitem(last=False)
    return engine


def route_many(
    graph: LabeledGraph,
    pairs: Iterable[Tuple[int, int]],
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> List[RouteResult]:
    """Batch-route ``pairs`` on ``graph`` through the shared prepared engine."""
    return prepare(graph).route_many(
        pairs,
        provider=provider,
        size_bound=size_bound,
        start_port=start_port,
        namespace_size=namespace_size,
    )
