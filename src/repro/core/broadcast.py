"""Broadcasting along a universal exploration sequence (Theorem 1, last part).

"The same algorithm works for the broadcasting problem, where s wants to send
the message to all the vertexes in its connected component."  Instead of
stopping when a particular target is met, the message simply follows the whole
sequence ``T_n`` — which, by universality, visits every vertex of the
component — delivering its payload at each node it visits, and then backtracks
to the source so the source learns the broadcast completed.

As for routing, both a centralised walker (:func:`broadcast`) and a fully
distributed protocol (:func:`broadcast_on_network`) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.engine import prepare
from repro.core.routing import (
    Direction,
    RouteOutcome,
    _DEFAULT_PROVIDER,
    _header_bits,
)
from repro.core.universal import SequenceProvider
from repro.errors import RoutingError
from repro.graphs.degree_reduction import EXTERNAL_PORT
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork
from repro.network.message import Header, Message
from repro.network.node import NodeContext
from repro.network.simulator import Protocol, SimulationResult

__all__ = ["BroadcastResult", "broadcast", "broadcast_on_network", "BroadcastProtocol"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one broadcast."""

    source: int
    reached: frozenset
    component_size: int
    covered_component: bool
    virtual_steps: int
    physical_hops: int
    sequence_length: int
    size_bound: int
    header_bits: int
    simulation: Optional[SimulationResult] = None

    @property
    def reach_count(self) -> int:
        """Number of distinct original vertices that received the payload."""
        return len(self.reached)


def broadcast(
    graph: LabeledGraph,
    source: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> BroadcastResult:
    """Broadcast from ``source`` along the exploration sequence (centralised).

    Returns which original vertices were reached; ``covered_component`` is the
    paper's guarantee (true whenever the sequence really is universal for the
    component size, which the default provider achieves with overwhelming
    probability and a certified provider achieves by construction).
    """
    engine = prepare(graph)
    provider = provider if provider is not None else _DEFAULT_PROVIDER
    namespace = namespace_size if namespace_size is not None else max(1, graph.num_vertices)
    bound, length, reached, physical_hops = engine.broadcast_walk(
        source, provider=provider, size_bound=size_bound, start_port=start_port
    )
    component = engine.original_component(source)
    return BroadcastResult(
        source=source,
        reached=reached,
        component_size=len(component),
        covered_component=component <= reached,
        virtual_steps=length,
        physical_hops=physical_hops,
        sequence_length=length,
        size_bound=bound,
        header_bits=_header_bits(namespace, length),
    )


class BroadcastProtocol(Protocol):
    """Distributed broadcast: the walk visits the component, delivering everywhere.

    Every node that the walk visits hands the payload to its application the
    first time it sees it (it remembers having seen it with a single bit of
    metered memory, well within the O(log n) budget).  After the sequence is
    exhausted the message backtracks to the source, which then knows the
    broadcast completed.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        source: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        payload: object = None,
    ) -> None:
        self._network = network
        self._source = source
        self._payload = payload
        self._provider = provider if provider is not None else _DEFAULT_PROVIDER
        self._engine = prepare(network.graph)
        self._reduction = self._engine.reduction
        self._kernel = self._engine.kernel
        self._bound = self._engine.resolve_size_bound(source, size_bound)
        self._offsets = self._engine.offsets_for(self._bound, self._provider)
        # The raw offsets ARE the sequence; the alias keeps the historical
        # attribute that callers size simulation budgets from.
        self._sequence = self._offsets
        self._name_bits = network.name_bits
        self._index_bits = max(1, len(self._sequence).bit_length())
        self.reached: Set[int] = set()

    def _widths(self) -> Dict[str, int]:
        return {
            "source": self._name_bits,
            "direction": 1,
            "index": self._index_bits,
            "size_bound": self._index_bits,
        }

    def _make_message(self, direction: Direction, index: int) -> Message:
        header = Header.from_values(
            self._widths(),
            {
                "source": self._network.name_of(self._source),
                "direction": 0 if direction is Direction.FORWARD else 1,
                "index": index,
                "size_bound": self._bound,
            },
        )
        return Message(header=header, payload=self._payload)

    def _deliver_once(self, ctx: NodeContext) -> None:
        if not ctx.memory.load("broadcast_seen", False):
            ctx.memory.store("broadcast_seen", True)
            ctx.deliver(self._payload, note="broadcast payload")
        self.reached.add(ctx.node_id)

    def _process(self, ctx: NodeContext, vertex: int, entry_port: int, index: int, direction: Direction) -> None:
        kernel = self._kernel
        next_vertex = kernel.next_vertex
        next_port = kernel.next_port
        owner_of = kernel.owner
        physical_port_of = kernel.physical_port
        sequence = self._offsets
        length = len(sequence)
        while True:
            owner = owner_of[vertex]
            if direction is Direction.FORWARD:
                self._deliver_once(ctx)
                if index >= length:
                    direction = Direction.BACK
                    continue
                edge = 3 * vertex + (entry_port + sequence[index]) % 3
                index += 1
                next_v = next_vertex[edge]
                if owner_of[next_v] != owner:
                    ctx.send(physical_port_of[vertex], self._make_message(direction, index))
                    return
                entry_port = next_port[edge]
                vertex = next_v
            else:
                if owner == self._source or index == 0:
                    ctx.finish(RouteOutcome.SUCCESS)
                    return
                offset = sequence[index - 1]
                edge = 3 * vertex + entry_port
                index -= 1
                previous_v = next_vertex[edge]
                if owner_of[previous_v] != owner:
                    ctx.send(physical_port_of[vertex], self._make_message(direction, index))
                    return
                entry_port = (next_port[edge] - offset) % 3
                vertex = previous_v

    def _physical_port_of(self, owner: int, virtual_vertex: int) -> int:
        return self._kernel.physical_port[virtual_vertex]

    def on_start(self, ctx: NodeContext) -> None:
        self._process(
            ctx, self._kernel.gateway(self._source), 0, index=0, direction=Direction.FORWARD
        )

    def on_message(self, ctx: NodeContext, in_port: int, message: Message) -> None:
        direction = Direction.FORWARD if message.header.get("direction") == 0 else Direction.BACK
        index = int(message.header.get("index"))
        virtual = self._reduction.carrier(ctx.node_id, in_port)
        if direction is Direction.FORWARD:
            entry_port = EXTERNAL_PORT
        else:
            entry_port = (EXTERNAL_PORT - self._offsets[index]) % 3
        self._process(ctx, virtual, entry_port, index, direction)


def broadcast_on_network(
    network: AdHocNetwork,
    source: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    payload: object = None,
    node_memory_bits: Optional[int] = None,
    max_events: Optional[int] = None,
) -> BroadcastResult:
    """Run the distributed broadcast on a simulated network."""
    protocol = BroadcastProtocol(
        network, source=source, provider=provider, size_bound=size_bound, payload=payload
    )
    simulator = network.simulator(node_memory_bits=node_memory_bits)
    length = len(protocol._sequence)
    budget = max_events if max_events is not None else 4 * length + 64
    result = simulator.run(protocol, initiators=[source], max_events=budget)
    if result.result_at(source) is None:
        raise RoutingError("the source never learned that the broadcast completed")
    component = protocol._engine.original_component(source)
    reached = frozenset(protocol.reached)
    return BroadcastResult(
        source=source,
        reached=reached,
        component_size=len(component),
        covered_component=component <= set(reached),
        virtual_steps=length,
        physical_hops=result.stats.transmissions,
        sequence_length=length,
        size_bound=protocol._bound,
        header_bits=result.stats.max_header_bits,
        simulation=result,
    )
