"""Broadcasting along a universal exploration sequence (Theorem 1, last part).

"The same algorithm works for the broadcasting problem, where s wants to send
the message to all the vertexes in its connected component."  Instead of
stopping when a particular target is met, the message simply follows the whole
sequence ``T_n`` — which, by universality, visits every vertex of the
component — delivering its payload at each node it visits, and then backtracks
to the source so the source learns the broadcast completed.

As for routing, both a centralised walker (:func:`broadcast`) and a fully
distributed protocol (:func:`broadcast_on_network`) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.core.exploration import WalkState, step_backward, step_forward
from repro.core.routing import (
    Direction,
    RouteOutcome,
    _DEFAULT_PROVIDER,
    _header_bits,
    _resolve_size_bound,
)
from repro.core.universal import SequenceProvider
from repro.errors import RoutingError
from repro.graphs.connectivity import connected_component
from repro.graphs.degree_reduction import EXTERNAL_PORT, reduce_to_three_regular
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork
from repro.network.message import Header, Message
from repro.network.node import NodeContext
from repro.network.simulator import Protocol, SimulationResult

__all__ = ["BroadcastResult", "broadcast", "broadcast_on_network", "BroadcastProtocol"]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one broadcast."""

    source: int
    reached: frozenset
    component_size: int
    covered_component: bool
    virtual_steps: int
    physical_hops: int
    sequence_length: int
    size_bound: int
    header_bits: int
    simulation: Optional[SimulationResult] = None

    @property
    def reach_count(self) -> int:
        """Number of distinct original vertices that received the payload."""
        return len(self.reached)


def broadcast(
    graph: LabeledGraph,
    source: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    start_port: int = 0,
    namespace_size: Optional[int] = None,
) -> BroadcastResult:
    """Broadcast from ``source`` along the exploration sequence (centralised).

    Returns which original vertices were reached; ``covered_component`` is the
    paper's guarantee (true whenever the sequence really is universal for the
    component size, which the default provider achieves with overwhelming
    probability and a certified provider achieves by construction).
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    provider = provider if provider is not None else _DEFAULT_PROVIDER
    reduction = reduce_to_three_regular(graph)
    reduced = reduction.graph
    bound = _resolve_size_bound(reduction, source, size_bound)
    sequence = provider.sequence_for(bound)
    namespace = namespace_size if namespace_size is not None else max(1, graph.num_vertices)

    state = WalkState(vertex=reduction.gateway(source), entry_port=start_port)
    reached: Set[int] = {source}
    physical_hops = 0
    for index in range(len(sequence)):
        next_state = step_forward(reduced, state, sequence[index])
        if reduction.to_original(next_state.vertex) != reduction.to_original(state.vertex):
            physical_hops += 1
        state = next_state
        reached.add(reduction.to_original(state.vertex))

    component = connected_component(graph, source)
    return BroadcastResult(
        source=source,
        reached=frozenset(reached),
        component_size=len(component),
        covered_component=component <= reached,
        virtual_steps=len(sequence),
        physical_hops=physical_hops,
        sequence_length=len(sequence),
        size_bound=bound,
        header_bits=_header_bits(namespace, len(sequence)),
    )


class BroadcastProtocol(Protocol):
    """Distributed broadcast: the walk visits the component, delivering everywhere.

    Every node that the walk visits hands the payload to its application the
    first time it sees it (it remembers having seen it with a single bit of
    metered memory, well within the O(log n) budget).  After the sequence is
    exhausted the message backtracks to the source, which then knows the
    broadcast completed.
    """

    def __init__(
        self,
        network: AdHocNetwork,
        source: int,
        provider: Optional[SequenceProvider] = None,
        size_bound: Optional[int] = None,
        payload: object = None,
    ) -> None:
        self._network = network
        self._source = source
        self._payload = payload
        self._provider = provider if provider is not None else _DEFAULT_PROVIDER
        self._reduction = reduce_to_three_regular(network.graph)
        self._bound = _resolve_size_bound(self._reduction, source, size_bound)
        self._sequence = self._provider.sequence_for(self._bound)
        self._name_bits = network.name_bits
        self._index_bits = max(1, len(self._sequence).bit_length())
        self.reached: Set[int] = set()

    def _widths(self) -> Dict[str, int]:
        return {
            "source": self._name_bits,
            "direction": 1,
            "index": self._index_bits,
            "size_bound": self._index_bits,
        }

    def _make_message(self, direction: Direction, index: int) -> Message:
        header = Header.from_values(
            self._widths(),
            {
                "source": self._network.name_of(self._source),
                "direction": 0 if direction is Direction.FORWARD else 1,
                "index": index,
                "size_bound": self._bound,
            },
        )
        return Message(header=header, payload=self._payload)

    def _deliver_once(self, ctx: NodeContext) -> None:
        if not ctx.memory.load("broadcast_seen", False):
            ctx.memory.store("broadcast_seen", True)
            ctx.deliver(self._payload, note="broadcast payload")
        self.reached.add(ctx.node_id)

    def _process(self, ctx: NodeContext, state: WalkState, index: int, direction: Direction) -> None:
        reduced = self._reduction.graph
        sequence = self._sequence
        length = len(sequence)
        while True:
            owner = self._reduction.to_original(state.vertex)
            if direction is Direction.FORWARD:
                self._deliver_once(ctx)
                if index >= length:
                    direction = Direction.BACK
                    continue
                offset = sequence[index]
                next_state = step_forward(reduced, state, offset)
                index += 1
                if self._reduction.to_original(next_state.vertex) != owner:
                    physical_port = self._physical_port_of(owner, state.vertex)
                    ctx.send(physical_port, self._make_message(direction, index))
                    return
                state = next_state
            else:
                if owner == self._source or index == 0:
                    ctx.finish(RouteOutcome.SUCCESS)
                    return
                offset = sequence[index - 1]
                previous_state = step_backward(reduced, state, offset)
                index -= 1
                if self._reduction.to_original(previous_state.vertex) != owner:
                    physical_port = self._physical_port_of(owner, state.vertex)
                    ctx.send(physical_port, self._make_message(direction, index))
                    return
                state = previous_state

    def _physical_port_of(self, owner: int, virtual_vertex: int) -> int:
        cluster = self._reduction.cluster(owner)
        return 0 if len(cluster) == 1 else cluster.index(virtual_vertex)

    def on_start(self, ctx: NodeContext) -> None:
        state = WalkState(vertex=self._reduction.gateway(self._source), entry_port=0)
        self._process(ctx, state, index=0, direction=Direction.FORWARD)

    def on_message(self, ctx: NodeContext, in_port: int, message: Message) -> None:
        direction = Direction.FORWARD if message.header.get("direction") == 0 else Direction.BACK
        index = int(message.header.get("index"))
        virtual = self._reduction.carrier(ctx.node_id, in_port)
        if direction is Direction.FORWARD:
            state = WalkState(vertex=virtual, entry_port=EXTERNAL_PORT)
        else:
            offset = self._sequence[index]
            degree = self._reduction.graph.degree(virtual)
            state = WalkState(vertex=virtual, entry_port=(EXTERNAL_PORT - offset) % degree)
        self._process(ctx, state, index, direction)


def broadcast_on_network(
    network: AdHocNetwork,
    source: int,
    provider: Optional[SequenceProvider] = None,
    size_bound: Optional[int] = None,
    payload: object = None,
    node_memory_bits: Optional[int] = None,
    max_events: Optional[int] = None,
) -> BroadcastResult:
    """Run the distributed broadcast on a simulated network."""
    protocol = BroadcastProtocol(
        network, source=source, provider=provider, size_bound=size_bound, payload=payload
    )
    simulator = network.simulator(node_memory_bits=node_memory_bits)
    length = len(protocol._sequence)
    budget = max_events if max_events is not None else 4 * length + 64
    result = simulator.run(protocol, initiators=[source], max_events=budget)
    if result.result_at(source) is None:
        raise RoutingError("the source never learned that the broadcast completed")
    component = connected_component(network.graph, source)
    reached = frozenset(protocol.reached)
    return BroadcastResult(
        source=source,
        reached=reached,
        component_size=len(component),
        covered_component=component <= set(reached),
        virtual_steps=length,
        physical_hops=result.stats.transmissions,
        sequence_length=length,
        size_bound=protocol._bound,
        header_bits=result.stats.max_header_bits,
        simulation=result,
    )
