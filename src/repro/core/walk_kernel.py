"""Array-backed walk kernel for the degree-reduced (3-regular) graph.

The exploration walk of Section 2 needs exactly one primitive per step: the
rotation map of the reduced graph.  :mod:`repro.graphs.labeled_graph` stores
that map as a dict keyed by ``(vertex, port)`` tuples, which is convenient for
construction and verification but costs a tuple allocation plus a hash lookup
per step on the routing hot path.  Because the reduced graph is always
3-regular with contiguous vertex ids ``0..|V'|-1`` (that is how
:func:`repro.graphs.degree_reduction.reduce_to_three_regular` numbers its
output), the whole rotation map flattens into two parallel integer lists

    ``next_vertex[3 * v + p]``  — vertex reached by leaving ``v`` through ``p``
    ``next_port[3 * v + p]``    — arrival port at that vertex

and a walk step becomes two list indexes.  The kernel also flattens the
cluster bookkeeping of the reduction (``owner``, per-virtual-vertex physical
port, gateway per original vertex) and the per-component size table, so the
routing engine never touches a dict or recomputes a connected component while
stepping.

The kernel is a pure compilation of an existing
:class:`~repro.graphs.degree_reduction.DegreeReducedGraph`; it changes the
representation, never the walk semantics — ``step_forward``/``step_backward``
here agree state-for-state with :func:`repro.core.exploration.step_forward`
and :func:`repro.core.exploration.step_backward` on the same reduced graph.

**Serializable form.**  Everything a walk consults at run time is six integer
arrays (:meth:`CompiledWalk.to_arrays`), and a kernel can be reconstructed
from those arrays alone (:meth:`CompiledWalk.from_arrays`) without re-deriving
the degree reduction — the cluster bookkeeping (owner → virtual members in
physical-port order) is recovered from the ``owner``/``physical_port``
columns.  That is what lets the kernel store
(:mod:`repro.core.kernel_store`) persist compiled kernels to disk,
content-addressed by :func:`rotation_hash` of the *original* graph: the
reduction is deterministic per rotation map, so equal graphs share one
on-disk kernel across processes and restarts.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.degree_reduction import DegreeReducedGraph

__all__ = ["CompiledWalk", "compile_reduction", "rotation_hash"]


def rotation_hash(graph) -> str:
    """Stable content address of a graph's rotation map (sha256 hex digest).

    Two graphs hash equally iff they are equal as port-labeled graphs — the
    same equivalence the walk itself observes (``LabeledGraph.__eq__`` is
    rotation-map equality).  The digest is computed over the sorted
    ``(vertex, port) -> (vertex, port)`` entries, so it is independent of
    insertion order, process, and ``PYTHONHASHSEED``; the degree reduction and
    its compiled kernel are deterministic functions of the rotation map, which
    is what makes this hash a sound content address for persisted kernels.
    """
    digest = hashlib.sha256()
    for (v, p), (w, q) in sorted(graph.rotation_map().items(), key=repr):
        digest.update(repr((v, p, w, q)).encode("utf-8"))
    return digest.hexdigest()


class CompiledWalk:
    """Flat-array view of a degree reduction, built once and reused forever.

    Attributes (all read-only by convention; lists are used instead of
    ``array('q')`` because CPython indexes plain lists slightly faster and the
    memory difference is irrelevant at reproduction scale):

    ``next_vertex`` / ``next_port``
        The flattened rotation map, indexed by ``3 * vertex + port``.
    ``owner``
        Original vertex simulated by each virtual vertex.
    ``physical_port``
        For each virtual vertex, the physical port of its owner whose external
        edge it carries (its position inside the owner's cluster) — the O(1)
        replacement for the protocol's old ``cluster.index`` linear scan.
    ``component_id`` / ``component_sizes``
        Connected-component partition of the reduced graph; the size of the
        component of virtual vertex ``v`` (what ``CountNodes`` would report,
        i.e. the routing size bound) is ``component_sizes[component_id[v]]``.
    """

    __slots__ = (
        "reduction",
        "num_vertices",
        "next_vertex",
        "next_port",
        "owner",
        "physical_port",
        "gateway_of",
        "clusters",
        "component_id",
        "component_sizes",
    )

    def __init__(self, reduction: DegreeReducedGraph) -> None:
        reduced = reduction.graph
        n = reduced.num_vertices
        if reduced.vertices != tuple(range(n)):
            raise GraphStructureError(
                "the reduced graph must use contiguous vertex ids 0..n-1"
            )
        reduced.require_regular(3)

        self.reduction = reduction
        self.num_vertices = n
        next_vertex: List[int] = [0] * (3 * n)
        next_port: List[int] = [0] * (3 * n)
        rotation = reduced.rotation_map()
        for (v, p), (w, q) in rotation.items():
            next_vertex[3 * v + p] = w
            next_port[3 * v + p] = q
        self.next_vertex = next_vertex
        self.next_port = next_port

        owner: List[int] = [0] * n
        physical_port: List[int] = [0] * n
        gateway_of: Dict[int, int] = {}
        clusters: Dict[int, Tuple[int, ...]] = {}
        for original, cluster in reduction.cluster_of.items():
            gateway_of[original] = cluster[0]
            clusters[original] = tuple(cluster)
            for offset, virtual in enumerate(cluster):
                owner[virtual] = original
                physical_port[virtual] = offset
        self.owner = owner
        self.physical_port = physical_port
        self.gateway_of = gateway_of
        self.clusters = clusters

        self.component_id, self.component_sizes = self._compute_components()

    # ------------------------------------------------------------------ #
    # Construction helpers / serialization
    # ------------------------------------------------------------------ #

    def to_arrays(self) -> Dict[str, List[int]]:
        """Flatten the kernel to plain integer lists for persistence.

        Six columns fully determine the kernel: the flattened rotation map
        (``next_vertex``/``next_port``), the cluster bookkeeping
        (``owner``/``physical_port`` — clusters and gateways are derivable),
        and the precomputed component partition
        (``component_id``/``component_sizes``).  The original
        :class:`DegreeReducedGraph` is *not* serialized; a kernel restored via
        :meth:`from_arrays` has ``reduction is None`` and callers that need
        the reduction object (e.g. the verbose route protocol) recompute it
        from the source graph.
        """
        return {
            "next_vertex": list(self.next_vertex),
            "next_port": list(self.next_port),
            "owner": list(self.owner),
            "physical_port": list(self.physical_port),
            "component_id": list(self.component_id),
            "component_sizes": list(self.component_sizes),
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, Sequence[int]]) -> "CompiledWalk":
        """Rebuild a kernel from :meth:`to_arrays` output (e.g. a disk load).

        Validates the shape invariants (3-regular sizing, port range, cluster
        contiguity) and raises :class:`~repro.errors.GraphStructureError` on
        inconsistent input, so a corrupt cache file surfaces as a structured
        error the kernel store can translate into "recompile".
        """
        try:
            owner = [int(x) for x in arrays["owner"]]
            physical_port = [int(x) for x in arrays["physical_port"]]
            next_vertex = [int(x) for x in arrays["next_vertex"]]
            next_port = [int(x) for x in arrays["next_port"]]
            component_id = [int(x) for x in arrays["component_id"]]
            component_sizes = [int(x) for x in arrays["component_sizes"]]
        except (KeyError, TypeError, ValueError) as error:
            raise GraphStructureError(f"malformed kernel arrays: {error}") from None

        n = len(owner)
        if (
            len(physical_port) != n
            or len(component_id) != n
            or len(next_vertex) != 3 * n
            or len(next_port) != 3 * n
        ):
            raise GraphStructureError("kernel arrays have inconsistent lengths")
        if n and not all(0 <= v < n for v in next_vertex):
            raise GraphStructureError("kernel next_vertex out of range")
        if not all(0 <= p < 3 for p in next_port):
            raise GraphStructureError("kernel next_port out of range")
        num_components = len(component_sizes)
        if n and not all(0 <= c < num_components for c in component_id):
            raise GraphStructureError("kernel component_id out of range")

        grouped: Dict[int, List[int]] = {}
        for virtual in range(n):
            grouped.setdefault(owner[virtual], []).append(virtual)
        gateway_of: Dict[int, int] = {}
        frozen: Dict[int, Tuple[int, ...]] = {}
        for original, members in grouped.items():
            # A cluster's physical ports must enumerate 0..len-1; each member
            # sits at the slot named by its carried physical port.
            ordered: List[int] = [-1] * len(members)
            for virtual in members:
                slot = physical_port[virtual]
                if not (0 <= slot < len(members)) or ordered[slot] >= 0:
                    raise GraphStructureError(
                        f"kernel cluster for vertex {original!r} is not contiguous"
                    )
                ordered[slot] = virtual
            gateway_of[original] = ordered[0]
            frozen[original] = tuple(ordered)

        kernel = cls.__new__(cls)
        kernel.reduction = None
        kernel.num_vertices = n
        kernel.next_vertex = next_vertex
        kernel.next_port = next_port
        kernel.owner = owner
        kernel.physical_port = physical_port
        kernel.gateway_of = gateway_of
        kernel.clusters = frozen
        kernel.component_id = component_id
        kernel.component_sizes = component_sizes
        return kernel

    def _compute_components(self) -> Tuple[List[int], List[int]]:
        """Partition the reduced graph into components with an iterative DFS."""
        n = self.num_vertices
        next_vertex = self.next_vertex
        component_id = [-1] * n
        sizes: List[int] = []
        for start in range(n):
            if component_id[start] >= 0:
                continue
            cid = len(sizes)
            stack = [start]
            component_id[start] = cid
            size = 0
            while stack:
                v = stack.pop()
                size += 1
                base = 3 * v
                for p in range(3):
                    w = next_vertex[base + p]
                    if component_id[w] < 0:
                        component_id[w] = cid
                        stack.append(w)
            sizes.append(size)
        return component_id, sizes

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def gateway(self, original_vertex: int) -> int:
        """Canonical virtual vertex of ``original_vertex`` (see the reduction)."""
        try:
            return self.gateway_of[original_vertex]
        except KeyError:
            raise GraphStructureError(
                f"unknown original vertex {original_vertex!r}"
            ) from None

    def component_size(self, virtual_vertex: int) -> int:
        """Size of the reduced component containing ``virtual_vertex``."""
        return self.component_sizes[self.component_id[virtual_vertex]]

    def neighbor(self, virtual_vertex: int, port: int) -> int:
        """Vertex reached by leaving ``virtual_vertex`` through ``port``."""
        return self.next_vertex[3 * virtual_vertex + port]

    def translate_virtual(
        self, other: "CompiledWalk", virtual_vertex: int
    ) -> Optional[int]:
        """Carry a walk position into another kernel over the same vertex set.

        A virtual position is meaningful across topology snapshots as the pair
        *(owner, carried physical port)*: the virtual node of the same original
        vertex that occupies the same offset inside its cluster.  Returns the
        corresponding virtual vertex of ``other``, or ``None`` when the owner's
        degree differs between the two reductions — the cluster shapes no
        longer correspond and the walk is stranded.  This is the O(1) switch-
        over primitive of the schedule-aware engine
        (:class:`repro.core.engine.PreparedSchedule`).  Uses the kernels' own
        cluster snapshots, so it works on kernels restored from disk whose
        ``reduction`` is ``None``.
        """
        original = self.owner[virtual_vertex]
        own_cluster = self.clusters[original]
        other_cluster = other.clusters.get(original)
        if other_cluster is None or len(own_cluster) != len(other_cluster):
            return None
        return other_cluster[self.physical_port[virtual_vertex]]

    # ------------------------------------------------------------------ #
    # Walk primitives (semantics identical to repro.core.exploration)
    # ------------------------------------------------------------------ #

    def step_forward(self, vertex: int, entry_port: int, offset: int) -> Tuple[int, int]:
        """One forward step; returns the new ``(vertex, entry_port)``."""
        e = 3 * vertex + (entry_port + offset) % 3
        return self.next_vertex[e], self.next_port[e]

    def step_backward(self, vertex: int, entry_port: int, offset: int) -> Tuple[int, int]:
        """Undo one step taken with ``offset``; returns the prior ``(vertex, entry_port)``."""
        e = 3 * vertex + entry_port
        return self.next_vertex[e], (self.next_port[e] - offset) % 3

    def walk_vertices(
        self,
        start_vertex: int,
        start_port: int,
        offsets: Sequence[int],
        max_steps: Optional[int] = None,
    ) -> List[int]:
        """Virtual vertices visited by the walk, starting vertex included."""
        next_vertex = self.next_vertex
        next_port = self.next_port
        v, p = start_vertex, start_port
        visited = [v]
        append = visited.append
        limit = len(offsets) if max_steps is None else min(len(offsets), max_steps)
        for index in range(limit):
            e = 3 * v + (p + offsets[index]) % 3
            v = next_vertex[e]
            p = next_port[e]
            append(v)
        return visited


def compile_reduction(reduction: DegreeReducedGraph) -> CompiledWalk:
    """Compile a degree reduction into its flat-array walk kernel."""
    return CompiledWalk(reduction)
