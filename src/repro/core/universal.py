"""Universal exploration sequences (Definition 3 / Theorem 4 of the paper).

A sequence is *universal* for connected 3-regular graphs of size ``<= n`` when
following it from any start edge, on any such graph, under any labeling,
visits every vertex.  Reingold's theorem says such sequences of polynomial
length can be produced deterministically in logarithmic space; the paper uses
them as a black box.

This module provides the black box in three practical forms, together with the
certification machinery that keeps the delivery guarantee *checkable* instead
of assumed:

* :class:`RandomSequenceProvider` — pseudo-random offsets of length
  ``Theta(n^3)``; universal with overwhelming probability (the probabilistic
  argument the paper sketches), and deterministic for a fixed seed, so every
  node of the network recomputes identical entries.
* :class:`CertifiedSequenceProvider` — wraps any provider and *certifies*
  coverage against a family of 3-regular graphs (exhaustive for very small
  ``n``, a structured + randomised family otherwise), doubling the sequence
  length until certification passes.  This is the reproduction's stand-in for
  the log-space construction of [Reingold 2004]: the routing layer gets a
  concrete sequence whose coverage property has been verified rather than
  derived from the zig-zag analysis.  (The zig-zag machinery itself is
  implemented in :mod:`repro.expander` and can serve as the wrapped provider.)
* :func:`certify_covers` / :func:`exhaustive_cubic_graphs` — the verification
  primitives, usable on their own in tests and experiments.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError, UniversalityCertificationError
from repro.core.exploration import ExplicitSequence, ExplorationSequence, covers_component
from repro.graphs.connectivity import is_connected
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs import generators
from repro.graphs.degree_reduction import reduce_to_three_regular

__all__ = [
    "SequenceProvider",
    "RandomSequenceProvider",
    "CertifiedSequenceProvider",
    "CertificationReport",
    "CoverageFailure",
    "certify_covers",
    "standard_certification_family",
    "exhaustive_cubic_graphs",
    "default_sequence_length",
]


def default_sequence_length(n: int, factor: int = 6) -> int:
    """Default length budget for a candidate sequence for graphs of size ``<= n``.

    A random walk covers a 3-regular graph of ``n`` vertices in ``O(n^2)``
    expected steps (the paper cites Feige / Lovász), and on any *fixed* graph
    a sequence of independent uniform offsets induces exactly a simple random
    walk, so ``Theta(n^2 log n)`` steps cover with high probability.  The
    default budget is ``factor * n^2 * ceil(log2 n)`` with a small floor for
    tiny graphs; callers needing the (much larger) fully-universal budget can
    pass their own ``length_fn``.
    """
    n = max(1, n)
    return max(32, factor * n * n * max(1, n.bit_length()))


class SequenceProvider(ABC):
    """Produces exploration sequences ``T_n`` indexed by the size bound ``n``.

    Providers must be deterministic: repeated calls with the same ``n`` return
    identical sequences.  This mirrors the paper's model where every node
    recomputes ``T_n[i]`` locally from scratch.
    """

    @abstractmethod
    def sequence_for(self, n: int) -> ExplorationSequence:
        """Return a sequence intended to be universal for 3-regular graphs of size <= n."""

    def length_for(self, n: int) -> int:
        """Length ``L_n`` of the sequence for bound ``n`` (the paper's ``|T_n|``)."""
        return len(self.sequence_for(n))

    def offset(self, n: int, index: int) -> int:
        """Return ``T_n[index]`` — the per-step lookup a node performs locally."""
        return self.sequence_for(n)[index]


class RandomSequenceProvider(SequenceProvider):
    """Pseudo-random exploration sequences, deterministic per (seed, n).

    The offsets are uniform over ``{0, 1, 2}``; the length defaults to
    ``default_sequence_length(n)`` and can be scaled with ``length_multiplier``
    (the knob :class:`CertifiedSequenceProvider` turns when certification
    fails).
    """

    def __init__(
        self,
        seed: int = 0,
        length_fn: Callable[[int], int] = default_sequence_length,
        length_multiplier: int = 1,
    ) -> None:
        self._seed = seed
        self._length_fn = length_fn
        self._length_multiplier = max(1, length_multiplier)
        self._cache: Dict[int, ExplicitSequence] = {}

    @property
    def seed(self) -> int:
        """Seed of the deterministic pseudo-random generator."""
        return self._seed

    def with_multiplier(self, multiplier: int) -> "RandomSequenceProvider":
        """Return a provider identical to this one but with a longer budget."""
        return RandomSequenceProvider(
            seed=self._seed,
            length_fn=self._length_fn,
            length_multiplier=multiplier,
        )

    def sequence_for(self, n: int) -> ExplicitSequence:
        if n not in self._cache:
            length = self._length_fn(n) * self._length_multiplier
            rng = random.Random(f"{self._seed}:{n}:{self._length_multiplier}")
            self._cache[n] = ExplicitSequence(rng.randrange(3) for _ in range(length))
        return self._cache[n]

    def clear_cache(self) -> None:
        """Drop the materialised sequences.

        Purely a memory/measurement hook: sequences are deterministic per
        ``(seed, n, multiplier)``, so a cleared cache regenerates the exact
        same offsets.  The sweep runner's worker cold-start uses this so a
        forked worker cannot inherit the parent's amortised generation work.
        """
        self._cache.clear()


@dataclass(frozen=True)
class CoverageFailure:
    """A single certification counterexample."""

    graph_index: int
    num_vertices: int
    start_vertex: int
    start_port: int


@dataclass
class CertificationReport:
    """Outcome of checking one sequence against a family of graphs."""

    n: int
    sequence_length: int
    graphs_checked: int
    starts_checked: int
    failures: List[CoverageFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when no start edge on any checked graph escaped coverage."""
        return not self.failures


def certify_covers(
    sequence: ExplorationSequence,
    graphs: Sequence[LabeledGraph],
    all_starts: bool = True,
    all_ports: bool = False,
) -> CertificationReport:
    """Check that ``sequence`` covers every graph of ``graphs``.

    ``all_starts`` walks from every vertex (otherwise only the smallest
    vertex); ``all_ports`` additionally tries every possible entry port at the
    start (Definition 3 quantifies over the initial *edge*, so the thorough
    mode checks all of them).
    """
    report = CertificationReport(
        n=max((g.num_vertices for g in graphs), default=0),
        sequence_length=len(sequence),
        graphs_checked=len(graphs),
        starts_checked=0,
    )
    for graph_index, graph in enumerate(graphs):
        starts = graph.vertices if all_starts else graph.vertices[:1]
        for start in starts:
            ports = range(graph.degree(start)) if all_ports else (0,)
            for port in ports:
                report.starts_checked += 1
                if not covers_component(graph, sequence, start, port):
                    report.failures.append(
                        CoverageFailure(
                            graph_index=graph_index,
                            num_vertices=graph.num_vertices,
                            start_vertex=start,
                            start_port=port,
                        )
                    )
    return report


def standard_certification_family(
    n: int,
    seed: int = 0,
    labelings_per_graph: int = 2,
) -> List[LabeledGraph]:
    """A structured + randomised family of connected 3-regular graphs of size <= n.

    The family mixes natively 3-regular topologies (prisms, Petersen,
    Möbius–Kantor, random cubic graphs) with degree reductions of common ad
    hoc topologies (paths, stars, grids), each under several random port
    relabelings — exercising the "for any labeling" quantifier of
    Definition 3.  All members are connected and have at most ``n`` vertices.
    """
    rng = random.Random(seed)
    candidates: List[LabeledGraph] = []

    def add(graph: LabeledGraph) -> None:
        if graph.num_vertices <= n and graph.num_vertices >= 1 and is_connected(graph):
            candidates.append(graph)
            for _ in range(max(0, labelings_per_graph - 1)):
                candidates.append(graph.with_relabeled_ports(rng))

    # Natively 3-regular graphs.
    add(generators.complete_graph(4))
    for k in range(3, max(4, n // 2) + 1):
        if 2 * k <= n:
            add(generators.prism_graph(k))
    if n >= 10:
        add(generators.petersen_graph())
    if n >= 16:
        add(generators.moebius_kantor_graph())
    for size in range(4, n + 1, 2):
        if size >= 4 and size <= n and size > 3:
            try:
                add(generators.random_regular_graph(size, 3, seed=rng.randrange(2 ** 30)))
            except (GraphStructureError, ValueError, ImportError):
                # Infeasible parameters (n*d odd, degree >= n) or networkx
                # unavailable: skip this family member.  Anything else — a
                # typo, API drift in the generator — must propagate; a bare
                # except here once hid real failures as "skipped graphs".
                continue

    # Degree reductions of non-regular topologies (these are what routing
    # actually runs on).
    reducible = [
        generators.path_graph(max(2, n // 3)),
        generators.star_graph(min(6, max(1, n // 4))),
        generators.grid_graph(2, max(2, n // 8)) if n >= 16 else None,
        generators.binary_tree(2) if n >= 14 else None,
    ]
    for graph in reducible:
        if graph is None:
            continue
        reduced = reduce_to_three_regular(graph).graph
        add(reduced)

    return [g for g in candidates if g.num_vertices <= n]


def _involutions(elements: Sequence[int]) -> Iterator[Dict[int, int]]:
    """All involutions (fixed points allowed) on ``elements``."""
    if not elements:
        yield {}
        return
    first, rest = elements[0], list(elements[1:])
    # first is a fixed point
    for partial in _involutions(rest):
        mapping = dict(partial)
        mapping[first] = first
        yield mapping
    # first is matched with some other element
    for index, partner in enumerate(rest):
        remaining = rest[:index] + rest[index + 1:]
        for partial in _involutions(remaining):
            mapping = dict(partial)
            mapping[first] = partner
            mapping[partner] = first
            yield mapping


def exhaustive_cubic_graphs(num_vertices: int, connected_only: bool = True) -> List[LabeledGraph]:
    """Every labeled 3-regular multigraph on exactly ``num_vertices`` vertices.

    Enumerates all rotation maps, i.e. all involutions on the ``3 * n`` half
    edges, so *every* labeling appears.  The count grows super-exponentially;
    this is intended for ``num_vertices <= 4`` (the test-suite uses 2 and 3),
    which is where genuinely exhaustive universality certification is feasible.
    """
    half_edges = [(v, p) for v in range(num_vertices) for p in range(3)]
    index = {he: i for i, he in enumerate(half_edges)}
    graphs: List[LabeledGraph] = []
    for involution in _involutions(list(range(len(half_edges)))):
        rotation = {
            half_edges[a]: half_edges[b] for a, b in involution.items()
        }
        graph = LabeledGraph(rotation)
        if connected_only and not is_connected(graph):
            continue
        graphs.append(graph)
    del index
    return graphs


class CertifiedSequenceProvider(SequenceProvider):
    """Wraps a provider and certifies its sequences before handing them out.

    For every requested bound ``n`` the wrapped provider's candidate sequence
    is checked against a certification family (``standard_certification_family``
    by default, or the exhaustive family for tiny ``n``).  If certification
    fails the candidate is regenerated with a doubled length budget, up to
    ``max_doublings`` times; persistent failure raises
    :class:`UniversalityCertificationError`.

    This keeps the guarantee of Theorem 1 *operational*: routing built on a
    certified provider cannot silently miss the target because the sequence
    was too short.
    """

    def __init__(
        self,
        base: Optional[SequenceProvider] = None,
        family: Callable[[int], Sequence[LabeledGraph]] = standard_certification_family,
        exhaustive_up_to: int = 3,
        max_doublings: int = 8,
        all_ports: bool = True,
    ) -> None:
        # The base provider must expose ``with_multiplier`` so certification
        # can retry with a longer budget; both RandomSequenceProvider and
        # ExpanderSequenceProvider do.
        self._base = base if base is not None else RandomSequenceProvider()
        self._family = family
        self._exhaustive_up_to = exhaustive_up_to
        self._max_doublings = max_doublings
        self._all_ports = all_ports
        self._cache: Dict[int, ExplorationSequence] = {}
        self._reports: Dict[int, CertificationReport] = {}

    def certification_report(self, n: int) -> Optional[CertificationReport]:
        """The report of the certification that admitted ``sequence_for(n)``."""
        return self._reports.get(n)

    def _certification_graphs(self, n: int) -> List[LabeledGraph]:
        graphs: List[LabeledGraph] = []
        for size in range(1, min(n, self._exhaustive_up_to) + 1):
            graphs.extend(exhaustive_cubic_graphs(size))
        graphs.extend(self._family(n))
        return graphs

    def sequence_for(self, n: int) -> ExplorationSequence:
        if n in self._cache:
            return self._cache[n]
        graphs = self._certification_graphs(n)
        multiplier = 1
        last_report: Optional[CertificationReport] = None
        for _ in range(self._max_doublings + 1):
            provider = (
                self._base
                if multiplier == 1
                else self._base.with_multiplier(multiplier)
            )
            candidate = provider.sequence_for(n)
            report = certify_covers(candidate, graphs, all_starts=True, all_ports=self._all_ports)
            last_report = report
            if report.passed:
                self._cache[n] = candidate
                self._reports[n] = report
                return candidate
            multiplier *= 2
        raise UniversalityCertificationError(
            f"could not certify a sequence for n={n} after {self._max_doublings} doublings; "
            f"last report had {len(last_report.failures) if last_report else '?'} failures"
        )
