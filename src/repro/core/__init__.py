"""The paper's primary contribution: guaranteed ad hoc routing via universal
exploration sequences.

The subpackage is organised to mirror the paper:

* :mod:`repro.core.exploration` — exploration-sequence walk semantics on
  port-labeled graphs, including the reversibility property (Section 2);
* :mod:`repro.core.universal` — universal exploration sequence providers and
  the certification machinery that stands in for Reingold's Theorem 4;
* :mod:`repro.core.memory` — the O(log n) space accounting used by nodes and
  message headers;
* :mod:`repro.core.routing` — Algorithm ``Route`` (Section 3, Theorem 1);
* :mod:`repro.core.walk_kernel` / :mod:`repro.core.engine` — the flat-array
  walk kernel and the prepared per-graph engine (cached reduction, size
  tables, ``route_many`` batch API) every entry point routes through;
* :mod:`repro.core.broadcast` — broadcasting along the exploration walk;
* :mod:`repro.core.reliable_broadcast` — Bracha's reliable broadcast layered
  on UES point-to-point routing, tolerating f < n/3 Byzantine nodes;
* :mod:`repro.core.counting` — Algorithm ``CountNodes`` (Section 4);
* :mod:`repro.core.hybrid` — the Corollary 2 combiner that runs a fast
  probabilistic router in parallel with the guaranteed one.
"""

from repro.core.exploration import (
    ExplicitSequence,
    ExplorationSequence,
    WalkState,
    covers_component,
    coverage_steps,
    step_backward,
    step_forward,
    walk_vertices,
)
from repro.core.universal import (
    CertifiedSequenceProvider,
    RandomSequenceProvider,
    SequenceProvider,
    certify_covers,
    standard_certification_family,
)
from repro.core.memory import MemoryMeter, bits_for_namespace
from repro.core.routing import (
    Direction,
    RouteOutcome,
    RouteResult,
    RoutingHeader,
    route,
    route_on_network,
)
from repro.core.broadcast import BroadcastResult, broadcast
from repro.core.reliable_broadcast import (
    QuorumThresholds,
    ReliableBroadcastResult,
    UESTransport,
    broadcast_reliably,
)
from repro.core.counting import CountingResult, count_nodes
from repro.core.engine import (
    PreparedNetwork,
    PreparedSchedule,
    WalkTrace,
    prepare,
    prepare_schedule,
    route_many,
)
from repro.core.walk_kernel import CompiledWalk
from repro.core.hybrid import HybridResult, hybrid_route
from repro.core.stconnectivity import ConnectivityAnswer, exploration_connectivity
from repro.core.adversary import (
    AdversarialWitness,
    find_adversarial_labeling,
    find_uncovered_start,
    worst_case_coverage_steps,
)

__all__ = [
    "ExplicitSequence",
    "ExplorationSequence",
    "WalkState",
    "covers_component",
    "coverage_steps",
    "step_backward",
    "step_forward",
    "walk_vertices",
    "CertifiedSequenceProvider",
    "RandomSequenceProvider",
    "SequenceProvider",
    "certify_covers",
    "standard_certification_family",
    "MemoryMeter",
    "bits_for_namespace",
    "Direction",
    "RouteOutcome",
    "RouteResult",
    "RoutingHeader",
    "route",
    "route_on_network",
    "route_many",
    "PreparedNetwork",
    "PreparedSchedule",
    "WalkTrace",
    "prepare",
    "prepare_schedule",
    "CompiledWalk",
    "BroadcastResult",
    "broadcast",
    "QuorumThresholds",
    "ReliableBroadcastResult",
    "UESTransport",
    "broadcast_reliably",
    "CountingResult",
    "count_nodes",
    "HybridResult",
    "hybrid_route",
    "ConnectivityAnswer",
    "exploration_connectivity",
    "AdversarialWitness",
    "find_adversarial_labeling",
    "find_uncovered_start",
    "worst_case_coverage_steps",
]
