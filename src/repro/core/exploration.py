"""Exploration-sequence walk semantics (Section 2 of the paper).

An *exploration sequence* is a sequence of integer offsets ``t_1, t_2, ...``.
A walk following it is defined on a port-labeled graph: if before step ``i``
the walk entered vertex ``v`` on the edge labeled ``l(v, u)`` (the port of
``v`` on which it arrived), then it leaves on the edge labeled

    ``l(v, w) = l(v, u) + t_i  (mod deg(v))``.

The crucial property used by Algorithm ``Route`` is *reversibility*: knowing
``t_i`` and the edge taken at step ``i``, the edge taken at step ``i - 1`` can
be recovered locally, because

    ``l(v, u) = l(v, w) - t_i  (mod deg(v))``.

This module implements the walk state, single forward/backward steps, whole
walks, and coverage checks.  Everything here is purely combinatorial; the
distributed realisation lives in :mod:`repro.core.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol, Sequence, Set, Tuple

from repro.errors import SequenceExhaustedError
from repro.graphs.connectivity import connected_component
from repro.graphs.labeled_graph import LabeledGraph

__all__ = [
    "WalkState",
    "ExplorationSequence",
    "ExplicitSequence",
    "step_forward",
    "step_backward",
    "walk_states",
    "walk_vertices",
    "covers_component",
    "coverage_steps",
    "first_visit_step",
]


@dataclass(frozen=True)
class WalkState:
    """The local state of an exploration walk.

    ``vertex`` is the walk's current position; ``entry_port`` is the label
    ``l(v, u)`` of the edge over which the walk arrived (for the walk's very
    first step the convention is an arbitrary port, 0 by default — the paper
    allows any initial edge).
    """

    vertex: int
    entry_port: int


class ExplorationSequence(Protocol):
    """Anything that behaves like a (possibly lazily computed) offset sequence.

    Offsets are indexed from 0; ``sequence[i]`` is the offset the paper calls
    ``t_{i+1}``.  Implementations must be deterministic: the same index always
    yields the same offset, because different nodes of the network recompute
    entries independently (that is the log-space re-computation trick of
    Section 2).
    """

    def __len__(self) -> int:  # pragma: no cover - protocol signature only
        ...

    def __getitem__(self, index: int) -> int:  # pragma: no cover - protocol signature only
        ...


class ExplicitSequence:
    """An exploration sequence backed by an in-memory list of offsets."""

    def __init__(self, offsets: Sequence[int]) -> None:
        self._offsets: Tuple[int, ...] = tuple(int(t) for t in offsets)

    def __len__(self) -> int:
        return len(self._offsets)

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < len(self._offsets):
            raise SequenceExhaustedError(
                f"index {index} outside sequence of length {len(self._offsets)}"
            )
        return self._offsets[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._offsets)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExplicitSequence):
            return self._offsets == other._offsets
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._offsets)

    def __repr__(self) -> str:
        preview = ", ".join(str(t) for t in self._offsets[:8])
        suffix = ", ..." if len(self._offsets) > 8 else ""
        return f"ExplicitSequence([{preview}{suffix}], length={len(self._offsets)})"

    def offsets(self) -> Tuple[int, ...]:
        """The raw offsets as a tuple."""
        return self._offsets


def step_forward(graph: LabeledGraph, state: WalkState, offset: int) -> WalkState:
    """Advance the walk one step using ``offset`` (the paper's ``next``).

    The walk leaves the current vertex through the port
    ``(entry_port + offset) mod deg(v)`` and the new state records the port on
    which it arrives at the neighbour.
    """
    degree = graph.degree(state.vertex)
    exit_port = (state.entry_port + offset) % degree
    neighbor, arrival_port = graph.rotation(state.vertex, exit_port)
    return WalkState(vertex=neighbor, entry_port=arrival_port)


def step_backward(graph: LabeledGraph, state: WalkState, offset: int) -> WalkState:
    """Undo one step of the walk (the paper's ``prev``).

    If ``state`` is the walk's state *after* a step taken with ``offset``,
    the returned state is the walk's state *before* that step.  Only local
    information (the current vertex's rotation map) is consulted, which is
    what lets the routing algorithm backtrack without any stored path.
    """
    previous_vertex, exit_port = graph.rotation(state.vertex, state.entry_port)
    degree = graph.degree(previous_vertex)
    previous_entry = (exit_port - offset) % degree
    return WalkState(vertex=previous_vertex, entry_port=previous_entry)


def walk_states(
    graph: LabeledGraph,
    sequence: ExplorationSequence,
    start_vertex: int,
    start_port: int = 0,
    max_steps: Optional[int] = None,
) -> Iterator[WalkState]:
    """Yield the successive states of the exploration walk, starting state included.

    The walk performs ``min(len(sequence), max_steps)`` steps.  The starting
    state corresponds to the paper's "initial edge": the walk behaves as if it
    had just arrived at ``start_vertex`` over port ``start_port``.
    """
    state = WalkState(vertex=start_vertex, entry_port=start_port)
    yield state
    limit = len(sequence) if max_steps is None else min(len(sequence), max_steps)
    for index in range(limit):
        state = step_forward(graph, state, sequence[index])
        yield state


def walk_vertices(
    graph: LabeledGraph,
    sequence: ExplorationSequence,
    start_vertex: int,
    start_port: int = 0,
    max_steps: Optional[int] = None,
) -> List[int]:
    """Vertices visited by the walk, in order (starting vertex first)."""
    return [state.vertex for state in walk_states(graph, sequence, start_vertex, start_port, max_steps)]


def covers_component(
    graph: LabeledGraph,
    sequence: ExplorationSequence,
    start_vertex: int,
    start_port: int = 0,
) -> bool:
    """Return ``True`` when the walk visits every vertex of the start's component.

    This is the coverage property that makes a sequence "universal" when it
    holds for *every* graph of bounded size, *every* labeling and *every*
    start edge (Definition 3).  Checking a single instance is the primitive
    out of which the certification machinery of :mod:`repro.core.universal`
    is built.
    """
    return coverage_steps(graph, sequence, start_vertex, start_port) is not None


def coverage_steps(
    graph: LabeledGraph,
    sequence: ExplorationSequence,
    start_vertex: int,
    start_port: int = 0,
) -> Optional[int]:
    """Number of steps after which the walk has seen the whole component.

    Returns ``None`` when the sequence ends before full coverage.  A return
    value of 0 means the component is the single starting vertex.
    """
    component = connected_component(graph, start_vertex)
    remaining: Set[int] = set(component)
    steps_taken = -1
    for steps_taken, state in enumerate(
        walk_states(graph, sequence, start_vertex, start_port)
    ):
        remaining.discard(state.vertex)
        if not remaining:
            return steps_taken
    return None


def first_visit_step(
    graph: LabeledGraph,
    sequence: ExplorationSequence,
    start_vertex: int,
    target_vertex: int,
    start_port: int = 0,
) -> Optional[int]:
    """Step index at which the walk first visits ``target_vertex`` (or ``None``).

    Step 0 is the starting position, so routing from a vertex to itself
    trivially returns 0.  This is the idealised (centralised) view of what
    Algorithm ``Route`` achieves hop by hop.
    """
    for step, state in enumerate(walk_states(graph, sequence, start_vertex, start_port)):
        if state.vertex == target_vertex:
            return step
    return None
