"""Cover-time and hitting-time estimates for random walks.

Section 2 of the paper leans on the classical results that a random walk of
length ``O(n^2)`` covers a bounded-degree graph with high probability (Feige;
Lovász).  This module provides:

* empirical estimates (repeat the walk over several seeds and average), used
  by experiment E2 to put the exploration-sequence coverage numbers next to
  the random-walk baseline; and
* the standard analytic bounds — Lovász's ``O(m n)`` / ``<= 2 m (n - 1)``
  cover-time upper bound and a spectral mixing-time bound — used as sanity
  rails in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised by the no-NumPy CI job
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import adjacency_matrix, second_eigenvalue
from repro.walks.random_walk import random_walk_cover_steps, random_walk_hitting_steps

__all__ = [
    "CoverTimeEstimate",
    "empirical_cover_time",
    "empirical_hitting_time",
    "lovasz_cover_time_upper_bound",
    "spectral_mixing_time_bound",
    "stationary_distribution",
]


@dataclass(frozen=True)
class CoverTimeEstimate:
    """Aggregate of repeated cover/hitting time measurements."""

    samples: int
    successes: int
    mean_steps: Optional[float]
    median_steps: Optional[float]
    max_steps: Optional[int]

    @property
    def success_rate(self) -> float:
        """Fraction of trials that finished within the step budget."""
        return self.successes / self.samples if self.samples else 0.0


def _summarise(observations: List[Optional[int]]) -> CoverTimeEstimate:
    finished = [obs for obs in observations if obs is not None]
    return CoverTimeEstimate(
        samples=len(observations),
        successes=len(finished),
        mean_steps=mean(finished) if finished else None,
        median_steps=median(finished) if finished else None,
        max_steps=max(finished) if finished else None,
    )


def empirical_cover_time(
    graph: LabeledGraph,
    start: int,
    trials: int = 10,
    max_steps: Optional[int] = None,
    seed: int = 0,
) -> CoverTimeEstimate:
    """Estimate the cover time of the start's component over several trials."""
    observations = [
        random_walk_cover_steps(graph, start, seed=seed + trial, max_steps=max_steps)
        for trial in range(trials)
    ]
    return _summarise(observations)


def empirical_hitting_time(
    graph: LabeledGraph,
    start: int,
    target: int,
    trials: int = 10,
    max_steps: Optional[int] = None,
    seed: int = 0,
) -> CoverTimeEstimate:
    """Estimate the hitting time from ``start`` to ``target`` over several trials."""
    observations = [
        random_walk_hitting_steps(
            graph, start, target, seed=seed + trial, max_steps=max_steps
        )
        for trial in range(trials)
    ]
    return _summarise(observations)


def lovasz_cover_time_upper_bound(graph: LabeledGraph) -> float:
    """The classical ``2 m (n - 1)`` upper bound on the expected cover time.

    ``m`` counts edges and ``n`` vertices (Aleliunas et al. / Lovász's survey).
    For 3-regular graphs this is ``3 n (n - 1)`` — the ``O(n^2)`` figure the
    paper quotes.
    """
    n = graph.num_vertices
    m = graph.num_edges
    if n <= 1:
        return 0.0
    return 2.0 * m * (n - 1)


def spectral_mixing_time_bound(graph: LabeledGraph, epsilon: float = 0.25) -> float:
    """Upper bound on the walk's mixing time from the spectral gap.

    Uses the standard ``log(n / epsilon) / (1 - lambda_2)`` bound.  Returns
    ``inf`` when the graph is disconnected or bipartite-degenerate
    (``lambda_2 = 1``).
    """
    if np is None:  # pragma: no cover - exercised by the no-NumPy CI job
        raise ImportError("spectral_mixing_time_bound needs NumPy")
    n = max(2, graph.num_vertices)
    lam = second_eigenvalue(graph)
    gap = 1.0 - lam
    if gap <= 1e-12:
        return float("inf")
    return float(np.log(n / epsilon) / gap)


def stationary_distribution(graph: LabeledGraph) -> "np.ndarray":
    """Stationary distribution of the simple random walk (degree / 2m).

    Returned as a vector indexed consistently with ``graph.vertices``.
    """
    adjacency = adjacency_matrix(graph)
    degrees = adjacency.sum(axis=1)
    total = degrees.sum()
    if total == 0:
        raise ValueError("stationary distribution undefined for an edgeless graph")
    return degrees / total
