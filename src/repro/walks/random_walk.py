"""Simple random walks on port-labeled graphs.

A simple random walk picks a uniformly random incident edge at every step.
On a port-labeled graph this is the same as following an exploration sequence
whose offsets are chosen independently and uniformly at every step — the
observation that motivates universal exploration sequences as a
*derandomized* random walk (Section 1.2 of the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set

from repro.errors import GraphStructureError
from repro.graphs.connectivity import connected_component
from repro.graphs.labeled_graph import LabeledGraph

__all__ = [
    "RandomWalk",
    "random_walk_trajectory",
    "random_walk_hitting_steps",
    "random_walk_cover_steps",
]


@dataclass
class RandomWalk:
    """A resumable simple random walk.

    The walk is deterministic for a fixed seed, which keeps experiment runs
    reproducible.  ``position`` is the current vertex; :meth:`step` advances
    by one edge and returns the new vertex.
    """

    graph: LabeledGraph
    start: int
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.graph.has_vertex(self.start):
            raise GraphStructureError(f"unknown start vertex {self.start!r}")
        if self.graph.degree(self.start) == 0:
            raise GraphStructureError("random walk cannot start at an isolated vertex")
        self._rng = random.Random(self.seed)
        self._position = self.start
        self._steps_taken = 0

    @property
    def position(self) -> int:
        """Current vertex of the walk."""
        return self._position

    @property
    def steps_taken(self) -> int:
        """Number of steps performed so far."""
        return self._steps_taken

    def step(self) -> int:
        """Advance one step along a uniformly random incident edge."""
        degree = self.graph.degree(self._position)
        port = self._rng.randrange(degree)
        self._position = self.graph.neighbor(self._position, port)
        self._steps_taken += 1
        return self._position

    def run(self, num_steps: int) -> List[int]:
        """Advance ``num_steps`` steps and return the visited vertices in order."""
        return [self.step() for _ in range(num_steps)]


def random_walk_trajectory(
    graph: LabeledGraph, start: int, num_steps: int, seed: int = 0
) -> List[int]:
    """Vertices visited by a ``num_steps``-step random walk (start included)."""
    walk = RandomWalk(graph, start, seed)
    return [start] + walk.run(num_steps)


def random_walk_hitting_steps(
    graph: LabeledGraph,
    start: int,
    target: int,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps a random walk needs to first reach ``target`` from ``start``.

    Returns ``None`` when ``max_steps`` elapse first (or when the target is
    unreachable and a bound was given).  Without a bound and with an
    unreachable target this would not terminate — exactly the failure mode of
    naive random routing the paper points out — so a bound is required unless
    the target is known reachable.
    """
    if start == target:
        return 0
    if max_steps is None:
        if target not in connected_component(graph, start):
            raise GraphStructureError(
                "target is unreachable; supply max_steps to bound the walk"
            )
    walk = RandomWalk(graph, start, seed)
    limit = max_steps if max_steps is not None else 10**12
    for step in range(1, limit + 1):
        if walk.step() == target:
            return step
    return None


def random_walk_cover_steps(
    graph: LabeledGraph,
    start: int,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Steps a random walk needs to visit every vertex of the start's component.

    Returns ``None`` if ``max_steps`` elapse before full coverage.
    """
    component = connected_component(graph, start)
    remaining: Set[int] = set(component)
    remaining.discard(start)
    if not remaining:
        return 0
    walk = RandomWalk(graph, start, seed)
    limit = max_steps if max_steps is not None else 10**12
    for step in range(1, limit + 1):
        remaining.discard(walk.step())
        if not remaining:
            return step
    return None
