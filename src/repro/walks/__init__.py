"""Random walks on labeled graphs.

The paper contrasts the deterministic universal-exploration-sequence walk with
the "natural, if wasteful" randomized walk (Section 1.2) and relies on the
classical fact that a random walk of length ``O(n^2)`` covers a 3-regular
graph with high probability (Section 2, citing Feige and Lovász).  This
subpackage provides the random-walk substrate: trajectory simulation,
empirical hitting/cover times and the standard analytic bounds, which the E2
experiment compares against the exploration-sequence coverage.
"""

from repro.walks.random_walk import (
    RandomWalk,
    random_walk_cover_steps,
    random_walk_hitting_steps,
    random_walk_trajectory,
)
from repro.walks.cover_time import (
    CoverTimeEstimate,
    empirical_cover_time,
    empirical_hitting_time,
    lovasz_cover_time_upper_bound,
    spectral_mixing_time_bound,
    stationary_distribution,
)

__all__ = [
    "RandomWalk",
    "random_walk_cover_steps",
    "random_walk_hitting_steps",
    "random_walk_trajectory",
    "CoverTimeEstimate",
    "empirical_cover_time",
    "empirical_hitting_time",
    "lovasz_cover_time_upper_bound",
    "spectral_mixing_time_bound",
    "stationary_distribution",
]
