"""Depth-first token routing — the "deposit a token in each node" approach.

The paper's introduction notes that without per-node state there is no
reliable way to return a confirmation, "unless we are willing to deposit a
token in each node the message visits along the path".  This module implements
that alternative honestly: a depth-first traversal in which every visited node
stores (i) a visited mark and (ii) the port leading back to its DFS parent.
It guarantees delivery and failure detection — but at the cost of
``O(log(deg))`` persistent bits in *every* visited node, which is exactly the
trade-off the exploration-sequence algorithm avoids.  The per-node state cost
is reported in the result so the comparison tables can show it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.errors import RoutingError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["dfs_token_route", "SPEC"]


def dfs_token_route(
    graph: LabeledGraph,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
) -> RoutingAttempt:
    """Route by a token-leaving depth-first traversal.

    The message walks the graph depth-first.  Each node it visits keeps a
    "visited" token and remembers its parent port; when all of a node's ports
    are exhausted the message returns to the parent.  If the traversal returns
    to the source with every port exhausted, the target is certifiably not in
    the component (``detected_failure=True``).
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    if source == target:
        return RoutingAttempt(
            algorithm="dfs-token", delivered=True, hops=0, path=(source,)
        )

    budget = max_hops if max_hops is not None else 8 * max(1, graph.num_edges)
    visited: Set[int] = {source}
    parent: Dict[int, Optional[int]] = {source: None}
    next_port: Dict[int, int] = {source: 0}
    path: List[int] = [source]
    current = source
    hops = 0

    while hops < budget:
        if current == target:
            break
        degree = graph.degree(current)
        advanced = False
        while next_port[current] < degree:
            port = next_port[current]
            next_port[current] = port + 1
            neighbor = graph.neighbor(current, port)
            if neighbor in visited:
                continue
            visited.add(neighbor)
            parent[neighbor] = current
            next_port[neighbor] = 0
            current = neighbor
            path.append(current)
            hops += 1
            advanced = True
            break
        if advanced:
            continue
        # All ports exhausted: backtrack to the parent.
        back = parent[current]
        if back is None:
            # Back at the source with nothing left to explore.
            per_node_bits = _per_node_state_bits(graph, visited)
            return RoutingAttempt(
                algorithm="dfs-token",
                delivered=False,
                hops=hops,
                path=tuple(path),
                detected_failure=True,
                per_node_state_bits=per_node_bits,
                notes="component exhausted without meeting the target",
            )
        current = back
        path.append(current)
        hops += 1

    delivered = current == target
    per_node_bits = _per_node_state_bits(graph, visited)
    return RoutingAttempt(
        algorithm="dfs-token",
        delivered=delivered,
        hops=hops,
        path=tuple(path),
        detected_failure=False,
        per_node_state_bits=per_node_bits,
        notes="" if delivered else "hop budget exhausted",
    )


def _per_node_state_bits(graph: LabeledGraph, visited: Set[int]) -> int:
    """Worst-case per-node state the traversal required, in bits.

    Each visited node stores one visited bit, a parent port and a next-port
    cursor; both port values need ``ceil(log2(deg + 1))`` bits.
    """
    worst = 0
    for vertex in visited:
        degree = max(1, graph.degree(vertex))
        port_bits = (degree).bit_length()
        worst = max(worst, 1 + 2 * port_bits)
    return worst


#: Conformance descriptor: the token-depositing DFS guarantees delivery and
#: detection, but only by storing per-node state the paper's model forbids.
SPEC = RouterSpec(
    name="dfs-token",
    run=lambda graph, deployment, source, target, seed: dfs_token_route(
        graph, source, target
    ),
    guaranteed_delivery=True,
    guaranteed_detection=True,
)
