"""Common result type and router descriptor shared by every baseline router.

Besides :class:`RoutingAttempt` (the per-attempt outcome record), this module
defines :class:`RouterSpec`: a uniform descriptor each baseline module
publishes as ``SPEC``.  The descriptor normalises the call signature (every
router runs as ``spec.run(graph, deployment, source, target, seed)``) and
declares the router's *contract* — whether it needs node positions, whether
it only works on planar 2D deployments, and whether delivery or failure
detection are guaranteed.  The differential conformance harness
(:mod:`repro.analysis.conformance`) iterates these descriptors to assert each
router's contract over the whole scenario matrix without special-casing any
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["RoutingAttempt", "RouterSpec"]


@dataclass(frozen=True)
class RoutingAttempt:
    """The outcome of one baseline routing attempt.

    Attributes
    ----------
    algorithm:
        Short identifier of the algorithm ("random-walk", "greedy", "gfg", ...).
    delivered:
        Whether the message reached the target.
    hops:
        Number of physical transmissions performed (for flooding this counts
        every transmission, not just those on the path that reached the target).
    path:
        The vertices visited by the message, in order, when the algorithm has a
        single message in flight; flooding leaves it empty.
    detected_failure:
        True when the algorithm itself *knows* it failed (e.g. greedy stuck at
        a local minimum, DFS exhausted the component).  A false value together
        with ``delivered == False`` means the algorithm was cut off by its step
        budget without learning anything — the silent-failure mode the paper's
        guaranteed router never exhibits.
    per_node_state_bits:
        Upper bound on the per-node state the algorithm needed (0 for the
        stateless ones; the DFS token router and flooding need per-node marks).
    """

    algorithm: str
    delivered: bool
    hops: int
    path: Tuple[int, ...] = ()
    detected_failure: bool = False
    per_node_state_bits: int = 0
    notes: str = ""

    @property
    def stretch_basis(self) -> int:
        """Hop count used when computing stretch against the shortest path."""
        return self.hops


@dataclass(frozen=True)
class RouterSpec:
    """Uniform descriptor of one baseline router (used by the conformance harness).

    Attributes
    ----------
    name:
        Stable identifier matching the attempts' ``algorithm`` field.
    run:
        Uniform adapter ``(graph, deployment, source, target, seed) ->
        RoutingAttempt``; routers that ignore positions or randomness simply
        drop those arguments.
    needs_positions:
        True when the router requires a :class:`~repro.geometry.deployment.Deployment`
        (position-based algorithms); it is skipped on purely topological
        scenarios.
    planar_only:
        True when the router's guarantee (and implementation) requires a 2D
        deployment with a planarisable subgraph — face routing and GFG.
    guaranteed_delivery:
        True when the router must deliver whenever source and target are
        connected (flooding, DFS token routing).  Routers without this flag
        may fail on connected pairs, but *no* router may ever deliver across
        components — that invariant is checked unconditionally.
    guaranteed_detection:
        True when ``detected_failure`` certifies that the target is
        unreachable.  Routers without this flag may raise the flag for softer
        reasons (greedy's local minima), so it proves nothing about
        connectivity.
    """

    name: str
    run: Callable[..., "RoutingAttempt"]
    needs_positions: bool = False
    planar_only: bool = False
    guaranteed_delivery: bool = False
    guaranteed_detection: bool = False
