"""Common result type shared by every baseline router."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["RoutingAttempt"]


@dataclass(frozen=True)
class RoutingAttempt:
    """The outcome of one baseline routing attempt.

    Attributes
    ----------
    algorithm:
        Short identifier of the algorithm ("random-walk", "greedy", "gfg", ...).
    delivered:
        Whether the message reached the target.
    hops:
        Number of physical transmissions performed (for flooding this counts
        every transmission, not just those on the path that reached the target).
    path:
        The vertices visited by the message, in order, when the algorithm has a
        single message in flight; flooding leaves it empty.
    detected_failure:
        True when the algorithm itself *knows* it failed (e.g. greedy stuck at
        a local minimum, DFS exhausted the component).  A false value together
        with ``delivered == False`` means the algorithm was cut off by its step
        budget without learning anything — the silent-failure mode the paper's
        guaranteed router never exhibits.
    per_node_state_bits:
        Upper bound on the per-node state the algorithm needed (0 for the
        stateless ones; the DFS token router and flooding need per-node marks).
    """

    algorithm: str
    delivered: bool
    hops: int
    path: Tuple[int, ...] = ()
    detected_failure: bool = False
    per_node_state_bits: int = 0
    notes: str = ""

    @property
    def stretch_basis(self) -> int:
        """Hop count used when computing stretch against the shortest path."""
        return self.hops
