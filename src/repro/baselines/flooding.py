"""Flooding — guaranteed delivery by brute force.

Flooding delivers to every node of the component (so it trivially guarantees
delivery and also solves broadcasting), but it costs a transmission per edge
and requires every node to remember that it has already forwarded the message
— per-node state the paper's model discourages and the exploration-sequence
approach avoids.  The implementation reports both costs so the trade-off
(message complexity and per-node state versus time) is visible in the
benchmark tables.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.errors import RoutingError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["FloodResult", "flood_broadcast", "flood_route", "SPEC"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of flooding a message from a source."""

    source: int
    reached: FrozenSet[int]
    transmissions: int
    rounds: int
    per_node_state_bits: int

    @property
    def reach_count(self) -> int:
        """Number of distinct nodes that received the message."""
        return len(self.reached)


def flood_broadcast(graph: LabeledGraph, source: int) -> FloodResult:
    """Synchronous flooding from ``source``.

    Every node retransmits the message to all its neighbours the first time it
    receives it.  ``transmissions`` counts every send; ``rounds`` is the
    number of synchronous rounds until quiescence (equal to the eccentricity
    of the source plus one).
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    reached: Set[int] = {source}
    frontier = [source]
    transmissions = 0
    rounds = 0
    while frontier:
        rounds += 1
        next_frontier = []
        for vertex in frontier:
            for port in range(graph.degree(vertex)):
                neighbor = graph.neighbor(vertex, port)
                transmissions += 1
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return FloodResult(
        source=source,
        reached=frozenset(reached),
        transmissions=transmissions,
        rounds=rounds,
        per_node_state_bits=1,
    )


def flood_route(graph: LabeledGraph, source: int, target: int) -> RoutingAttempt:
    """Route by flooding: deliver when the flood reaches the target.

    The hop count reported is the *total* number of transmissions the flood
    caused — that is the honest cost of using flooding as a routing primitive,
    and the number the benchmark tables compare against the single-message
    walkers.
    """
    flood = flood_broadcast(graph, source)
    delivered = target in flood.reached
    return RoutingAttempt(
        algorithm="flooding",
        delivered=delivered,
        hops=flood.transmissions,
        path=(),
        detected_failure=not delivered,
        per_node_state_bits=flood.per_node_state_bits,
        notes=f"reached {flood.reach_count} nodes in {flood.rounds} rounds",
    )


#: Conformance descriptor: flooding reaches the whole component, so both
#: delivery and failure detection are guaranteed (at per-node-state cost).
SPEC = RouterSpec(
    name="flooding",
    run=lambda graph, deployment, source, target, seed: flood_route(
        graph, source, target
    ),
    guaranteed_delivery=True,
    guaranteed_detection=True,
)
