"""Baseline routing and broadcasting algorithms.

The paper positions its exploration-sequence router against the existing
landscape: naive random-walk routing (the "natural, if wasteful" approach of
Section 1.2), flooding, and the position-based algorithms surveyed in its
references [2, 5, 9] — greedy geographic forwarding and greedy-face-greedy
(GFG/GPSR) on a planarised subgraph — plus the token-depositing DFS strawman
the introduction dismisses because it requires per-node state.  All of them
are implemented here so every experiment can report the guaranteed router and
its competitors on the identical network instance.

All baselines return a :class:`RoutingAttempt`, which also satisfies the
``FastAttempt`` protocol expected by the Corollary 2 combiner
(:func:`repro.core.hybrid.hybrid_route`).
"""

from typing import Optional, Tuple

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.baselines import random_walk_routing
from repro.baselines.random_walk_routing import random_walk_route
from repro.baselines import flooding
from repro.baselines.flooding import flood_broadcast, flood_route, FloodResult
from repro.baselines import greedy_geo
from repro.baselines.greedy_geo import greedy_geographic_route
from repro.baselines import face_routing
from repro.baselines.face_routing import gfg_route, face_route
from repro.baselines import dfs_routing
from repro.baselines.dfs_routing import dfs_token_route

#: Every baseline router, as a uniform descriptor.  The conformance harness
#: (and any sweep that wants "all competitors on this instance") iterates
#: this tuple instead of hard-coding algorithm-specific call signatures.
ALL_ROUTER_SPECS: Tuple[RouterSpec, ...] = (
    random_walk_routing.SPEC,
    flooding.SPEC,
    dfs_routing.SPEC,
    greedy_geo.SPEC,
    face_routing.SPEC,
)


def router_applies(
    spec: RouterSpec, has_positions: bool, dimension: Optional[int] = None
) -> bool:
    """Whether one router's contract lets it run on a scenario.

    The single applicability policy: position-based routers need a
    deployment, planar-only routers need a 2D one.  ``dimension=None`` means
    "unknown", which only the positive checks can veto.  Both the conformance
    harness (:func:`applicable_routers`, from a built network) and the sweep
    planner (:func:`repro.analysis.runner.plan_sweep`, statically from a
    :class:`~repro.analysis.experiments.ScenarioSpec`) decide through this
    predicate.
    """
    if spec.needs_positions and not has_positions:
        return False
    if spec.planar_only and dimension is not None and dimension != 2:
        return False
    return True


def applicable_routers(
    deployment: Optional[object] = None, dimension: Optional[int] = None
) -> Tuple[RouterSpec, ...]:
    """The subset of :data:`ALL_ROUTER_SPECS` runnable on a scenario.

    ``deployment`` is the scenario's node deployment (``None`` for purely
    topological networks, which rules out the position-based routers);
    ``dimension`` its dimensionality (face routing requires 2D).
    """
    return tuple(
        spec
        for spec in ALL_ROUTER_SPECS
        if router_applies(spec, deployment is not None, dimension)
    )


__all__ = [
    "RouterSpec",
    "RoutingAttempt",
    "ALL_ROUTER_SPECS",
    "applicable_routers",
    "router_applies",
    "random_walk_route",
    "flood_broadcast",
    "flood_route",
    "FloodResult",
    "greedy_geographic_route",
    "gfg_route",
    "face_route",
    "dfs_token_route",
]
