"""Baseline routing and broadcasting algorithms.

The paper positions its exploration-sequence router against the existing
landscape: naive random-walk routing (the "natural, if wasteful" approach of
Section 1.2), flooding, and the position-based algorithms surveyed in its
references [2, 5, 9] — greedy geographic forwarding and greedy-face-greedy
(GFG/GPSR) on a planarised subgraph — plus the token-depositing DFS strawman
the introduction dismisses because it requires per-node state.  All of them
are implemented here so every experiment can report the guaranteed router and
its competitors on the identical network instance.

All baselines return a :class:`RoutingAttempt`, which also satisfies the
``FastAttempt`` protocol expected by the Corollary 2 combiner
(:func:`repro.core.hybrid.hybrid_route`).
"""

from repro.baselines.base import RoutingAttempt
from repro.baselines.random_walk_routing import random_walk_route
from repro.baselines.flooding import flood_broadcast, flood_route, FloodResult
from repro.baselines.greedy_geo import greedy_geographic_route
from repro.baselines.face_routing import gfg_route, face_route
from repro.baselines.dfs_routing import dfs_token_route

__all__ = [
    "RoutingAttempt",
    "random_walk_route",
    "flood_broadcast",
    "flood_route",
    "FloodResult",
    "greedy_geographic_route",
    "gfg_route",
    "face_route",
    "dfs_token_route",
]
