"""Random-walk routing — the paper's "natural, if wasteful" strawman.

The message performs a simple random walk until it happens to hit the target
or a step budget runs out.  The paper lists its three defects (Section 1.2):
it may fail to reach the target within any fixed budget, it has no way to
return a confirmation without depositing per-node state, and it never
terminates when no path exists.  The implementation exposes exactly those
defects: a mandatory step budget, no confirmation, and ``detected_failure``
always false — running out of budget teaches the source nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.errors import RoutingError
from repro.graphs.labeled_graph import LabeledGraph
from repro.walks.random_walk import RandomWalk

__all__ = ["random_walk_route", "SPEC"]


def random_walk_route(
    graph: LabeledGraph,
    source: int,
    target: int,
    max_steps: Optional[int] = None,
    seed: int = 0,
) -> RoutingAttempt:
    """Route by an unbiased random walk with a step budget.

    ``max_steps`` defaults to ``8 * n^2`` (a couple of expected cover times),
    which makes success overwhelmingly likely when the target is reachable
    but is still only a probabilistic statement — the contrast the Corollary 2
    experiment quantifies.
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    if source == target:
        return RoutingAttempt(
            algorithm="random-walk", delivered=True, hops=0, path=(source,)
        )
    budget = max_steps if max_steps is not None else 8 * graph.num_vertices ** 2
    if graph.degree(source) == 0:
        return RoutingAttempt(
            algorithm="random-walk",
            delivered=False,
            hops=0,
            path=(source,),
            detected_failure=False,
            notes="source is isolated",
        )
    walk = RandomWalk(graph, source, seed=seed)
    path = [source]
    for _ in range(budget):
        vertex = walk.step()
        path.append(vertex)
        if vertex == target:
            return RoutingAttempt(
                algorithm="random-walk",
                delivered=True,
                hops=len(path) - 1,
                path=tuple(path),
            )
    return RoutingAttempt(
        algorithm="random-walk",
        delivered=False,
        hops=len(path) - 1,
        path=tuple(path),
        detected_failure=False,
        notes=f"budget of {budget} steps exhausted",
    )


#: Conformance descriptor: probabilistic, position-free, no guarantees — the
#: strawman whose silent failures the guaranteed router eliminates.
SPEC = RouterSpec(
    name="random-walk",
    run=lambda graph, deployment, source, target, seed: random_walk_route(
        graph, source, target, seed=seed
    ),
)
