"""Greedy-Face-Greedy (GFG / GPSR-style) routing on planarised 2D networks.

This is the classical guaranteed-delivery algorithm for *planar* graphs that
the paper's references [2, 5, 9] survey, included as the strongest
position-based baseline:

* **greedy mode** forwards to the neighbour closest to the target;
* on reaching a local minimum the packet switches to **perimeter (face) mode**
  and traverses the boundary of the current face of a planar subgraph (the
  Gabriel graph by default) using the right-hand rule, switching faces where
  the boundary crosses the line towards the target;
* as soon as the packet reaches a node closer to the target than the point
  where greedy got stuck, greedy mode resumes;
* if a face traversal returns to its first edge without progress, the target
  is unreachable and the failure is *detected*.

The guarantee fundamentally relies on the planarity of the traversed subgraph,
which only holds for 2D unit-disk-like deployments — exactly the limitation
that motivates the paper's topology-independent approach (and experiment E8,
where 3D deployments leave GFG inapplicable while the exploration-sequence
router still delivers).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.errors import GeometryError, RoutingError
from repro.geometry.deployment import Deployment
from repro.geometry.planar import gabriel_subgraph, segments_properly_intersect
from repro.geometry.points import Point, distance
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["face_route", "gfg_route", "SPEC"]


def _require_2d(deployment: Deployment) -> None:
    if deployment.dimension != 2:
        raise GeometryError(
            "face routing requires a 2D deployment: planar subgraphs (and with "
            "them the delivery guarantee) do not exist for 3D unit-ball graphs"
        )


def _angle(origin: Point, towards: Point) -> float:
    return math.atan2(towards.y - origin.y, towards.x - origin.x) % (2 * math.pi)


def _next_ccw(
    graph: LabeledGraph, deployment: Deployment, v: int, reference_angle: float
) -> Optional[int]:
    """Neighbour of ``v`` whose direction is first strictly after ``reference_angle`` (CCW)."""
    neighbors = sorted(set(w for w in graph.neighbors(v) if w != v))
    if not neighbors:
        return None
    origin = deployment.position(v)

    def turn(w: int) -> float:
        delta = (_angle(origin, deployment.position(w)) - reference_angle) % (2 * math.pi)
        return delta if delta > 1e-12 else 2 * math.pi

    return min(neighbors, key=turn)


def face_route(
    graph: LabeledGraph,
    deployment: Deployment,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
) -> RoutingAttempt:
    """Pure perimeter/face routing on an (assumed planar) graph.

    Used on its own it is slow but delivery-guaranteed on connected planar
    graphs; GFG uses it only as the fallback for greedy's local minima.
    """
    _require_2d(deployment)
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    if source == target:
        return RoutingAttempt(algorithm="face", delivered=True, hops=0, path=(source,))
    target_position = deployment.position(target)
    budget = max_hops if max_hops is not None else 8 * max(1, graph.num_edges)

    path = [source]
    current = source
    face_anchor = deployment.position(source)          # point progress is measured from
    first_edge: Optional[Tuple[int, int]] = None       # first edge of the current face walk
    previous: Optional[int] = None

    for _ in range(budget):
        if current == target:
            break
        origin = deployment.position(current)
        if previous is None:
            reference_angle = _angle(origin, target_position)
        else:
            reference_angle = _angle(origin, deployment.position(previous))
        next_hop = _next_ccw(graph, deployment, current, reference_angle)
        if next_hop is None:
            return RoutingAttempt(
                algorithm="face",
                delivered=False,
                hops=len(path) - 1,
                path=tuple(path),
                detected_failure=True,
                notes=f"dead end at isolated node {current}",
            )
        edge = (current, next_hop)
        if first_edge is None:
            first_edge = edge
        elif edge == first_edge:
            return RoutingAttempt(
                algorithm="face",
                delivered=False,
                hops=len(path) - 1,
                path=tuple(path),
                detected_failure=True,
                notes="face traversal wrapped around without progress",
            )
        # Face change: the traversed edge crosses the anchor->target segment.
        if segments_properly_intersect(
            deployment.position(current),
            deployment.position(next_hop),
            face_anchor,
            target_position,
        ):
            first_edge = edge
            face_anchor = deployment.position(next_hop)
        previous = current
        current = next_hop
        path.append(current)

    delivered = current == target
    return RoutingAttempt(
        algorithm="face",
        delivered=delivered,
        hops=len(path) - 1,
        path=tuple(path),
        detected_failure=False,
        notes="" if delivered else "hop budget exhausted",
    )


def gfg_route(
    graph: LabeledGraph,
    deployment: Deployment,
    source: int,
    target: int,
    planar_graph: Optional[LabeledGraph] = None,
    max_hops: Optional[int] = None,
) -> RoutingAttempt:
    """Greedy-Face-Greedy routing from ``source`` to ``target``.

    Greedy forwarding runs on the full unit-disk graph; the face-routing
    fallback runs on ``planar_graph`` (the Gabriel subgraph of ``graph`` by
    default).  Only 2D deployments are supported — see the module docstring.
    """
    _require_2d(deployment)
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    if source == target:
        return RoutingAttempt(algorithm="gfg", delivered=True, hops=0, path=(source,))
    planar = planar_graph if planar_graph is not None else gabriel_subgraph(graph, deployment)
    target_position = deployment.position(target)
    budget = max_hops if max_hops is not None else 8 * max(1, graph.num_edges)

    path = [source]
    current = source
    mode = "greedy"
    stuck_distance = float("inf")      # distance to target where greedy got stuck
    face_anchor: Optional[Point] = None
    first_edge: Optional[Tuple[int, int]] = None
    previous: Optional[int] = None

    for _ in range(budget):
        if current == target:
            break
        current_position = deployment.position(current)
        current_distance = distance(current_position, target_position)

        if mode == "perimeter" and current_distance < stuck_distance - 1e-15:
            mode = "greedy"
            previous = None

        if mode == "greedy":
            best_neighbor = None
            best_distance = current_distance
            for neighbor in set(graph.neighbors(current)):
                if neighbor == current:
                    continue
                candidate = distance(deployment.position(neighbor), target_position)
                if candidate < best_distance - 1e-15:
                    best_distance = candidate
                    best_neighbor = neighbor
            if best_neighbor is not None:
                previous = current
                current = best_neighbor
                path.append(current)
                continue
            # Local minimum: enter perimeter mode on the planar subgraph.
            mode = "perimeter"
            stuck_distance = current_distance
            face_anchor = current_position
            first_edge = None
            previous = None

        # Perimeter mode: right-hand-rule traversal of the planar subgraph.
        origin = deployment.position(current)
        if previous is None:
            reference_angle = _angle(origin, target_position)
        else:
            reference_angle = _angle(origin, deployment.position(previous))
        next_hop = _next_ccw(planar, deployment, current, reference_angle)
        if next_hop is None:
            return RoutingAttempt(
                algorithm="gfg",
                delivered=False,
                hops=len(path) - 1,
                path=tuple(path),
                detected_failure=True,
                notes=f"planar subgraph leaves node {current} isolated",
            )
        edge = (current, next_hop)
        if first_edge is None:
            first_edge = edge
        elif edge == first_edge:
            return RoutingAttempt(
                algorithm="gfg",
                delivered=False,
                hops=len(path) - 1,
                path=tuple(path),
                detected_failure=True,
                notes="perimeter traversal wrapped around: target unreachable",
            )
        if face_anchor is not None and segments_properly_intersect(
            deployment.position(current),
            deployment.position(next_hop),
            face_anchor,
            target_position,
        ):
            first_edge = edge
            face_anchor = deployment.position(next_hop)
        previous = current
        current = next_hop
        path.append(current)

    delivered = current == target
    return RoutingAttempt(
        algorithm="gfg",
        delivered=delivered,
        hops=len(path) - 1,
        path=tuple(path),
        detected_failure=False,
        notes="" if delivered else "hop budget exhausted",
    )


#: Conformance descriptor: GFG needs a 2D deployment (its guarantee rests on
#: the planarised subgraph, which does not exist in 3D — the limitation the
#: paper's topology-independent approach removes).
SPEC = RouterSpec(
    name="gfg",
    run=lambda graph, deployment, source, target, seed: gfg_route(
        graph, deployment, source, target
    ),
    needs_positions=True,
    planar_only=True,
)
