"""Greedy geographic forwarding.

Each node forwards the message to the neighbour geometrically closest to the
target, provided that neighbour is strictly closer than the node itself.  The
algorithm is stateless and extremely cheap, but it gets stuck at *local
minima* ("voids"): nodes none of whose neighbours improve on the distance to
the target.  In 2D the classic fix is to fall back to face routing on a
planar subgraph (see :mod:`repro.baselines.face_routing`); in 3D no such
general fix exists — the motivation the paper cites from [2] — which is what
experiment E8 demonstrates.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import RouterSpec, RoutingAttempt
from repro.errors import GeometryError, RoutingError
from repro.geometry.deployment import Deployment
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["greedy_geographic_route", "SPEC"]


def greedy_geographic_route(
    graph: LabeledGraph,
    deployment: Deployment,
    source: int,
    target: int,
    max_hops: Optional[int] = None,
) -> RoutingAttempt:
    """Greedy geographic routing from ``source`` to ``target``.

    The target must be a deployed node (greedy routing needs its coordinates).
    The attempt ends in one of three ways: delivery, a detected local minimum
    (``detected_failure=True`` — the node knows it is stuck), or an exhausted
    hop budget.
    """
    if not graph.has_vertex(source):
        raise RoutingError(f"source {source!r} is not a vertex of the graph")
    try:
        target_position = deployment.position(target)
    except GeometryError as exc:
        raise RoutingError(f"target {target!r} has no known position") from exc

    budget = max_hops if max_hops is not None else 4 * graph.num_vertices
    current = source
    path = [source]
    for _ in range(budget):
        if current == target:
            break
        current_distance = deployment.position(current).distance_to(target_position)
        best_neighbor = None
        best_distance = current_distance
        for neighbor in set(graph.neighbors(current)):
            if neighbor == current:
                continue
            candidate = deployment.position(neighbor).distance_to(target_position)
            if candidate < best_distance - 1e-15:
                best_distance = candidate
                best_neighbor = neighbor
        if best_neighbor is None:
            return RoutingAttempt(
                algorithm="greedy",
                delivered=False,
                hops=len(path) - 1,
                path=tuple(path),
                detected_failure=True,
                notes=f"stuck at local minimum {current}",
            )
        current = best_neighbor
        path.append(current)
    delivered = current == target
    return RoutingAttempt(
        algorithm="greedy",
        delivered=delivered,
        hops=len(path) - 1,
        path=tuple(path),
        detected_failure=False if delivered else False,
        notes="" if delivered else "hop budget exhausted",
    )


#: Conformance descriptor: greedy needs positions and guarantees nothing —
#: its detected_failure only means "stuck at a local minimum", which can
#: happen on perfectly connected pairs.
SPEC = RouterSpec(
    name="greedy",
    run=lambda graph, deployment, source, target, seed: greedy_geographic_route(
        graph, deployment, source, target
    ),
    needs_positions=True,
)
