""":class:`ResultLog` — the append-only, hash-chained JSONL result log.

One log is one JSONL file: each line is a sealed record
(:func:`repro.provenance.records.seal_record`) whose ``parent`` is the
previous line's ``record_hash``.  Three access modes share the format:

* **Append** — :meth:`ResultLog.append` seals the record against the current
  chain head and writes one flushed line under a lock, so concurrent
  dispatcher threads (the routing daemon) interleave whole records and a
  crash loses at most the line in flight — the same atomicity contract the
  sweep JSONL stream always had.  Opening an existing log in append mode
  adopts its chain head and heals a partial trailing line (a killed writer)
  by terminating it, exactly like the sweep runner's resume path.
* **Tolerant read** — :func:`read_log` returns every record whose line
  parses and whose ``record_hash`` verifies, skipping anything else.  This
  is the crash-safe view resume and the daemon's ``GET /v1/log`` use: a
  corrupt tail (or a tampered record) surfaces as *missing work*, never as
  poisoned data.
* **Strict verify** — :func:`verify_log` walks the whole chain and reports
  every anomaly by record index: unparseable lines, record-hash mismatches,
  chain breaks, unknown schema versions.  A single flipped byte anywhere in
  the file trips at least one of these checks (property-tested in
  ``tests/test_provenance.py``).

Record schema and chain rules are documented in ``docs/provenance.md``.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TaskError
from repro.provenance.records import (
    GENESIS_PARENT,
    PROVENANCE_SCHEMA_VERSION,
    canonical_json,
    record_digest,
    seal_record,
    task_address,
)

__all__ = ["ResultLog", "VerifyReport", "read_log", "verify_log"]


def _parse_line(line: str) -> Optional[Dict[str, object]]:
    """The dict a JSONL line carries, or ``None`` when it is not one."""
    import json

    try:
        record = json.loads(line)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


def _scan(path: str) -> Tuple[List[Dict[str, object]], List[str]]:
    """Shared pass over a log file: hash-valid records plus anomaly notes.

    ``issues`` names every skipped line by record index (the index the line
    *would* have had) and 1-based line number, so both the tolerant reader
    and the strict verifier describe the same file the same way.
    """
    records: List[Dict[str, object]] = []
    issues: List[str] = []
    # errors="replace": a corrupted byte must surface as an unparseable
    # *record* (named by index), never as a decoding crash of the whole scan.
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            index = len(records)
            record = _parse_line(stripped)
            if record is None:
                issues.append(
                    f"record {index}: unparseable line {line_number} "
                    "(truncated or corrupt)"
                )
                continue
            stored = record.get("record_hash")
            if stored != record_digest(record):
                issues.append(
                    f"record {index}: record_hash mismatch on line {line_number} "
                    f"(stored {str(stored)[:16]!r}...)"
                )
                continue
            records.append(record)
    return records, issues


def read_log(path: str) -> Tuple[List[Dict[str, object]], List[str]]:
    """Tolerantly read a log: hash-valid records in file order, plus issues.

    Chain linkage is *not* enforced here — a record after a tampered one is
    still individually valid and resume must keep skipping its shard; the
    linkage check belongs to :func:`verify_log`.
    """
    return _scan(path)


@dataclass
class VerifyReport:
    """What a strict chain walk found: every record, every anomaly."""

    path: str
    ok: bool
    head: str
    records: List[Dict[str, object]] = field(default_factory=list)
    issues: List[str] = field(default_factory=list)


def verify_log(path: str) -> VerifyReport:
    """Walk the whole chain strictly; any anomaly makes the report not-ok.

    Beyond the per-record checks of :func:`read_log`, every record's
    ``parent`` must equal the previous record's ``record_hash`` (the first
    record's must be :data:`~repro.provenance.records.GENESIS_PARENT`) and
    its ``schema_version`` must be known.
    """
    records, issues = _scan(path)
    head = GENESIS_PARENT
    for index, record in enumerate(records):
        if record.get("parent") != head:
            issues.append(
                f"record {index}: chain break: parent "
                f"{str(record.get('parent'))[:16]!r}... does not match the "
                f"previous record_hash {head[:16]!r}..."
            )
        if record.get("schema_version") != PROVENANCE_SCHEMA_VERSION:
            issues.append(
                f"record {index}: unknown schema_version "
                f"{record.get('schema_version')!r} "
                f"(this reader supports {PROVENANCE_SCHEMA_VERSION})"
            )
        head = str(record.get("record_hash"))
    issues.sort(key=lambda issue: int(issue.split(":")[0].split()[1]))
    return VerifyReport(
        path=path, ok=not issues, head=head, records=records, issues=issues
    )


def _missing_final_newline(path: str) -> bool:
    with open(path, "rb") as peek:
        peek.seek(0, os.SEEK_END)
        if peek.tell() == 0:
            return False
        peek.seek(-1, os.SEEK_END)
        return peek.read(1) != b"\n"


class ResultLog:
    """Append sealed records to one JSONL file; track the chain head.

    ``mode="a"`` (default) continues an existing log: the constructor scans
    the file tolerantly, adopts the last hash-valid record's hash as the
    chain head, and terminates a partial trailing line so the next append
    cannot concatenate onto it.  ``mode="w"`` truncates and starts a fresh
    chain at :data:`~repro.provenance.records.GENESIS_PARENT`.

    Appends are serialised by an internal lock and flushed line-by-line, so
    the log is safe to share across the daemon's dispatcher threads and a
    crash can only lose the record in flight.
    """

    def __init__(self, path: str, mode: str = "a") -> None:
        if mode not in ("a", "w"):
            raise TaskError(f"ResultLog mode must be 'a' or 'w', not {mode!r}")
        self._path = path
        self._lock = threading.Lock()
        self._head = GENESIS_PARENT
        self._count = 0
        if mode == "a" and os.path.exists(path):
            records, _issues = _scan(path)
            if records:
                self._head = str(records[-1]["record_hash"])
            self._count = len(records)
        self._handle = open(path, mode, encoding="utf-8")
        if mode == "a" and _missing_final_newline(path):
            # The previous writer died mid-line; terminate the partial record
            # now (and flush, in case a process pool forks later) so the
            # first append starts on its own line.
            self._handle.write("\n")
            self._handle.flush()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> str:
        """The JSONL file this log appends to."""
        return self._path

    @property
    def head(self) -> str:
        """The current chain head (the last appended ``record_hash``)."""
        return self._head

    @property
    def count(self) -> int:
        """Hash-valid records adopted at open plus records appended since."""
        return self._count

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(
        self,
        kind: str,
        body: Dict[str, object],
        address: Optional[str] = None,
    ) -> Dict[str, object]:
        """Seal ``body`` against the chain head and write one flushed line."""
        with self._lock:
            return self._append_locked(kind, body, address)

    def _append_locked(
        self, kind: str, body: Dict[str, object], address: Optional[str]
    ) -> Dict[str, object]:
        record = seal_record(kind, body, parent=self._head, address=address)
        self._handle.write(canonical_json(record) + "\n")
        self._handle.flush()
        self._head = str(record["record_hash"])
        self._count += 1
        return record

    def append_task(self, request, result):
        """Record one task submission; return the result with its chain link.

        The returned :class:`~repro.api.envelope.TaskResult` is the input
        with ``provenance["parent"]`` patched to the record's parent hash —
        the stored result and the returned result are the same bytes, which
        is what lets ``repro log replay`` compare them bit-for-bit later.
        """
        from repro.api.envelope import to_wire

        with self._lock:
            provenance = result.provenance
            if provenance is not None:
                provenance = dict(provenance)
                provenance["parent"] = self._head
                result = dataclasses.replace(result, provenance=provenance)
                address = str(provenance.get("address"))
            else:
                address = task_address(request)
            self._append_locked(
                "task",
                {
                    "task": request.task,
                    "request": to_wire(request),
                    "result": to_wire(result),
                },
                address,
            )
        return result

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Close the underlying file handle (appends after this raise)."""
        self._handle.close()

    def __enter__(self) -> "ResultLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
