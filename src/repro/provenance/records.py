"""Canonical encoding, content addresses and hash-chain sealing rules.

A provenance record is a flat JSON object.  Three field groups make it
accountable:

* **Identity** — ``kind`` (``"task"``, ``"shard"``, ``"plan"``, ``"bench"``),
  ``schema_version`` (:data:`PROVENANCE_SCHEMA_VERSION`) and ``address``:
  the sha256 content address of a canonical encoding of *what was asked* —
  the request envelope / scenario spec / seeds plus the code and schema
  version — never of what was produced.  Two runs of the same code over the
  same request share an address; the address is how ``repro log replay``
  finds the record to re-execute.
* **Chain** — ``parent`` is the previous record's ``record_hash``
  (:data:`GENESIS_PARENT` for the first record) and ``record_hash`` is the
  sha256 of the canonical encoding of the record *minus* ``record_hash``.
  Appends therefore commit to the entire history: flipping a single byte
  anywhere in the log breaks a record hash or a parent link, which
  :func:`repro.provenance.log.verify_log` reports by record index.
* **Body** — the record kind's own fields (the wire-encoded request and
  result for tasks, the rows for sweep shards, the report for benchmarks).

Canonical encoding is :func:`canonical_json`: sorted keys, no whitespace,
NaN rejected — the same canonical form the task envelope codec
(:mod:`repro.api.envelope`) uses, so equal records always hash equally.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.errors import TaskError

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "GENESIS_PARENT",
    "canonical_json",
    "content_address",
    "code_version",
    "task_address",
    "seal_record",
    "record_digest",
]

#: Version of the provenance record schema; bumped on incompatible changes.
PROVENANCE_SCHEMA_VERSION = 1

#: The ``parent`` of the first record of a log (no predecessor to commit to).
GENESIS_PARENT = "0" * 64

#: Fields every sealed record carries besides its kind-specific body.
_ENVELOPE_FIELDS = ("kind", "schema_version", "parent", "address", "record_hash")


def canonical_json(obj: object) -> str:
    """The one canonical JSON encoding: sorted keys, compact, no NaN."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as error:
        raise TaskError(
            f"cannot canonically encode this object ({error}); provenance "
            "records must carry only JSON-safe values"
        )


def content_address(obj: object) -> str:
    """sha256 hex digest of the canonical encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def code_version() -> str:
    """The repository version that produced a record (``repro.__version__``)."""
    import repro

    return repro.__version__


def task_address(request) -> str:
    """Content address of one task submission: request + code/schema version.

    The request's tagged wire envelope already nails down the scenario spec
    and every seed (see :mod:`repro.api.envelope`), so hashing it alongside
    the code and schema version keys the record by everything replay needs.
    """
    from repro.api.envelope import to_wire

    return content_address(
        {
            "request": to_wire(request),
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "code_version": code_version(),
        }
    )


def seal_record(
    kind: str,
    body: Dict[str, object],
    parent: str,
    address: Optional[str] = None,
) -> Dict[str, object]:
    """Build one chain-sealed record: envelope + body + ``record_hash``.

    ``body`` must not shadow the envelope fields — the seal would otherwise
    be ambiguous about which value was hashed.
    """
    clash = sorted(set(body) & set(_ENVELOPE_FIELDS))
    if clash:
        raise TaskError(f"record body may not use the envelope fields {clash}")
    record: Dict[str, object] = {
        "kind": kind,
        "schema_version": PROVENANCE_SCHEMA_VERSION,
        "parent": parent,
    }
    if address is not None:
        record["address"] = address
    record.update(body)
    record["record_hash"] = record_digest(record)
    return record


def record_digest(record: Dict[str, object]) -> str:
    """What ``record_hash`` must equal: the address of the rest of the record."""
    return content_address(
        {key: value for key, value in record.items() if key != "record_hash"}
    )
