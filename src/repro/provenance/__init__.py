"""Accountable provenance: the content-addressed, hash-chained result log.

Every result-producing layer of the repository — the task API
(:mod:`repro.api`), the sharded sweep orchestrator
(:mod:`repro.analysis.runner`), the routing daemon (:mod:`repro.server`) and
the benchmark harness (``benchmarks/bench_utils.py``) — used to persist its
numbers in its own ad-hoc format.  This package replaces those formats with
one schema:

* :mod:`repro.provenance.records` — canonical JSON encoding, content
  addresses (sha256 of ``(request envelope, scenario spec, seeds,
  code/schema version)``) and the hash-chain sealing rules.
* :mod:`repro.provenance.log` — :class:`ResultLog`, the append-only JSONL
  log with atomic flushed appends, corrupt-tail-tolerant reads and a strict
  chain verifier.
* :mod:`repro.provenance.replay` — re-execute recorded task/shard records
  through the live code and assert bitwise-identical payloads; the engine
  behind ``repro log verify`` / ``replay`` / ``diff`` (see ``docs/cli.md``).

The record schema, chain rules and replay semantics are documented in
``docs/provenance.md``.
"""

from repro.provenance.log import ResultLog, VerifyReport, read_log, verify_log
from repro.provenance.records import (
    GENESIS_PARENT,
    PROVENANCE_SCHEMA_VERSION,
    canonical_json,
    code_version,
    content_address,
    record_digest,
    seal_record,
    task_address,
)
from repro.provenance.replay import ReplayOutcome, diff_logs, replay_record

__all__ = [
    "GENESIS_PARENT",
    "PROVENANCE_SCHEMA_VERSION",
    "ResultLog",
    "VerifyReport",
    "ReplayOutcome",
    "canonical_json",
    "code_version",
    "content_address",
    "diff_logs",
    "read_log",
    "record_digest",
    "replay_record",
    "seal_record",
    "task_address",
    "verify_log",
]
