"""Replay recorded results through the live code and compare bit-for-bit.

A provenance record stores *what was asked* (the tagged request envelope, or
a sweep shard's spec/router/pairs/seed) next to *what was produced*.  Replay
closes the loop: it re-executes the recorded ask through exactly the public
execution paths — :meth:`repro.api.session.Session.submit` for ``task``
records, :func:`repro.analysis.runner.evaluate_shard` for ``shard`` records
— and asserts the fresh payload is byte-identical to the recorded one under
the canonical encoding.  That equality is the refactor-safety argument the
log exists for: any change that alters a published number breaks replay.

Two recorded fields are legitimately run-dependent and are masked before
comparison: ``elapsed_seconds`` (wall clock) and ``provenance.parent`` (the
chain position of the *recorded* run).  Replayed sweep tasks additionally
run without their ``out_path``/``resume`` side effects, so the bookkeeping
payload keys those options feed (``out_path``, ``shards_executed``,
``shards_skipped``) are masked too — the table rows themselves are always
compared exactly.  ``plan`` and ``bench`` records are descriptive, not
executable, and are skipped.

The CLI front ends (``repro log verify`` / ``replay`` / ``diff``) dispatch
into :func:`run_log_command`; see ``docs/cli.md`` and ``docs/provenance.md``.
"""

from __future__ import annotations

import dataclasses
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TaskError
from repro.provenance.log import read_log, verify_log
from repro.provenance.records import canonical_json

__all__ = [
    "ReplayOutcome",
    "replay_record",
    "select_records",
    "diff_logs",
    "run_log_command",
]

#: Record kinds that carry something executable.
REPLAYABLE_KINDS = ("task", "shard")

#: Sweep-task payload keys fed by out_path/resume (masked, see module doc).
_SWEEP_BOOKKEEPING_KEYS = ("out_path", "shards_executed", "shards_skipped")


@dataclass
class ReplayOutcome:
    """One record's replay verdict."""

    index: int
    kind: str
    address: Optional[str]
    ok: bool
    detail: str


def _normalised_result_wire(result) -> Dict[str, object]:
    """A result's wire form with the run-dependent fields masked."""
    from repro.api.envelope import to_wire

    result = result.replace_timing(0.0)
    if result.provenance is not None:
        provenance = dict(result.provenance)
        provenance["parent"] = None
        result = dataclasses.replace(result, provenance=provenance)
    wire = to_wire(result)
    if result.task == "sweep":
        fields = dict(wire["fields"])
        payload = dict(fields["payload"])
        for key in _SWEEP_BOOKKEEPING_KEYS:
            payload[key] = None
        fields["payload"] = payload
        wire = {"kind": wire["kind"], "fields": fields}
    return wire


def _replay_task(record: Dict[str, object], session) -> Tuple[bool, str]:
    from repro.api.envelope import from_wire
    from repro.api.requests import SweepRequest
    from repro.api.session import Session

    request = from_wire(record["request"])
    recorded = from_wire(record["result"])
    if isinstance(request, SweepRequest) and (request.out_path or request.resume):
        # Replay must not overwrite the recorded run's shard stream (or any
        # other file); the rows are identical either way.
        request = dataclasses.replace(request, out_path=None, resume=False)
    if session is None:
        session = Session()
    # Honour the recorded backend routing when the replaying session knows
    # it (an explicit backend= override is part of what was asked).
    backend = recorded.backend if recorded.backend in session.backends else None
    fresh = session.submit(request, backend=backend)
    recorded_wire = _normalised_result_wire(recorded)
    fresh_wire = _normalised_result_wire(fresh)
    if canonical_json(recorded_wire) == canonical_json(fresh_wire):
        return True, f"task {recorded.task!r} reproduced bit-for-bit"
    mismatched = sorted(
        key
        for key in set(recorded_wire["fields"]) | set(fresh_wire["fields"])
        if recorded_wire["fields"].get(key) != fresh_wire["fields"].get(key)
    )
    return False, (
        f"task {recorded.task!r} diverged from the recorded result "
        f"(fields: {', '.join(mismatched)})"
    )


def _replay_shard(record: Dict[str, object]) -> Tuple[bool, str]:
    from repro.analysis.runner import SweepShard, evaluate_shard
    from repro.api.envelope import _spec_from_wire

    shard = SweepShard(
        index=int(record["index"]),
        spec=_spec_from_wire(record["spec"]),
        router=str(record["router"]),
        pairs=int(record["pairs"]),
        seed=int(record["seed"]),
    )
    fresh = evaluate_shard(shard)
    if canonical_json(fresh) == canonical_json(record["rows"]):
        return True, f"shard {shard.key!r} reproduced {len(fresh)} rows bit-for-bit"
    return False, f"shard {shard.key!r} rows diverged from the recorded rows"


def replay_record(
    record: Dict[str, object], session=None, index: int = 0
) -> ReplayOutcome:
    """Re-execute one record; compare against its recorded result."""
    kind = str(record.get("kind"))
    address = record.get("address")
    address = str(address) if address is not None else None
    if kind == "task":
        ok, detail = _replay_task(record, session)
    elif kind == "shard":
        ok, detail = _replay_shard(record)
    else:
        return ReplayOutcome(
            index=index,
            kind=kind,
            address=address,
            ok=False,
            detail=f"record kind {kind!r} is not replayable",
        )
    return ReplayOutcome(index=index, kind=kind, address=address, ok=ok, detail=detail)


def select_records(
    records: List[Dict[str, object]],
    address: Optional[str] = None,
    index: Optional[int] = None,
    sample: Optional[int] = None,
) -> List[Tuple[int, Dict[str, object]]]:
    """The ``(index, record)`` pairs a replay invocation asks for.

    ``address`` matches a record's content address or its ``record_hash``
    (every match replays); ``index`` picks one record by position; ``sample``
    picks that many evenly spaced *replayable* records (deterministically —
    CI uses this to spot-check a fresh log).  With no selector, every
    replayable record is selected.
    """
    if sum(selector is not None for selector in (address, index, sample)) > 1:
        raise TaskError("pick one of: an address, --index, --sample")
    if address is not None:
        matches = [
            (position, record)
            for position, record in enumerate(records)
            if address in (record.get("address"), record.get("record_hash"))
        ]
        if not matches:
            raise TaskError(f"no record with address or hash {address!r}")
        return matches
    if index is not None:
        if not 0 <= index < len(records):
            raise TaskError(
                f"--index {index} out of range (log holds {len(records)} records)"
            )
        return [(index, records[index])]
    replayable = [
        (position, record)
        for position, record in enumerate(records)
        if record.get("kind") in REPLAYABLE_KINDS
    ]
    if sample is None:
        return replayable
    if sample < 1:
        raise TaskError("--sample must be >= 1")
    if not replayable:
        return []
    count = min(sample, len(replayable))
    return [replayable[position * len(replayable) // count] for position in range(count)]


def diff_logs(left: str, right: str) -> Tuple[bool, List[str]]:
    """Compare two logs record by record; ``(identical, difference notes)``."""
    left_records, left_issues = read_log(left)
    right_records, right_issues = read_log(right)
    lines = [f"{left}: {issue}" for issue in left_issues]
    lines += [f"{right}: {issue}" for issue in right_issues]
    for position, (a, b) in enumerate(zip(left_records, right_records)):
        if a.get("record_hash") != b.get("record_hash"):
            lines.append(
                f"record {position}: chains diverge — "
                f"{a.get('kind')} {str(a.get('record_hash'))[:16]}... vs "
                f"{b.get('kind')} {str(b.get('record_hash'))[:16]}..."
            )
            break
    else:
        if len(left_records) != len(right_records):
            shorter, longer = (
                (left, right)
                if len(left_records) < len(right_records)
                else (right, left)
            )
            lines.append(
                f"{shorter} is a strict prefix of {longer} "
                f"({len(left_records)} vs {len(right_records)} records)"
            )
    return (not lines, lines)


# --------------------------------------------------------------------------- #
# CLI entry (`repro log ...` dispatches here)
# --------------------------------------------------------------------------- #


def run_log_command(args, out=None) -> int:
    """Body of the ``repro log`` subcommand family; returns the exit status."""
    out = out if out is not None else sys.stdout
    paths = (
        (args.left, args.right)
        if args.log_command == "diff"
        else (args.path,)
    )
    for path in paths:
        if not os.path.isfile(path):
            raise TaskError(f"no such result log: {path}")
    if args.log_command == "verify":
        report = verify_log(args.path)
        if report.ok:
            print(
                f"ok: {len(report.records)} records, chain verified "
                f"(head {report.head[:16]}...)",
                file=out,
            )
            return 0
        print(
            f"FAIL: {len(report.issues)} issues in {args.path}",
            file=out,
        )
        for issue in report.issues:
            print(f"  {issue}", file=out)
        return 1
    if args.log_command == "replay":
        records, issues = read_log(args.path)
        for issue in issues:
            print(f"[skipped] {issue}", file=out)
        selected = select_records(
            records, address=args.address, index=args.index, sample=args.sample
        )
        if not selected:
            print(f"no replayable records in {args.path}", file=out)
            return 1
        from repro.api.session import Session

        session = Session()
        failures = 0
        for position, record in selected:
            outcome = replay_record(record, session=session, index=position)
            status = "ok" if outcome.ok else "FAIL"
            print(f"record {position} [{outcome.kind}] {status}: {outcome.detail}", file=out)
            failures += 0 if outcome.ok else 1
        if failures:
            print(f"FAIL: {failures}/{len(selected)} replays diverged", file=out)
            return 1
        print(f"ok: {len(selected)} records replayed bit-for-bit", file=out)
        return 0
    if args.log_command == "diff":
        identical, lines = diff_logs(args.left, args.right)
        if identical:
            print("ok: logs are identical record-for-record", file=out)
            return 0
        for line in lines:
            print(line, file=out)
        return 1
    raise TaskError(f"unknown log subcommand {args.log_command!r}")
