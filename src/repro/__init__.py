"""repro — reproduction of "On ad hoc routing with guaranteed delivery".

The package reproduces Mark Braverman's PODC 2008 note end to end: ad hoc
routing (and broadcasting) with *guaranteed delivery* on arbitrary static
topologies, using universal exploration sequences over a degree-reduced
3-regular version of the network, with O(log n) node memory and O(log n)
message overhead, in time polynomial in the size of the source's connected
component — plus the network simulator, topology generators, baseline
algorithms and experiment harness needed to evaluate it.

Quickstart
----------

>>> from repro import build_unit_disk_network, route
>>> network = build_unit_disk_network(30, radius=0.35, seed=1)
>>> result = route(network.graph, source=0, target=17)
>>> result.outcome
<RouteOutcome.SUCCESS: 'success'>

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
experiment harness described in EXPERIMENTS.md.
"""

from repro.errors import (
    GeometryError,
    GraphStructureError,
    MemoryBudgetExceeded,
    ReproError,
    RoutingError,
    SequenceError,
    SimulationError,
)
from repro.graphs import (
    LabeledGraph,
    connected_component,
    generators,
    is_connected,
    reduce_to_three_regular,
)
from repro.geometry import (
    Deployment,
    Point,
    gabriel_subgraph,
    grid_deployment,
    random_deployment,
    unit_disk_graph,
)
from repro.core import (
    BroadcastResult,
    CertifiedSequenceProvider,
    CountingResult,
    Direction,
    ExplicitSequence,
    HybridResult,
    MemoryMeter,
    PreparedNetwork,
    PreparedSchedule,
    RandomSequenceProvider,
    RouteOutcome,
    RouteResult,
    WalkState,
    broadcast,
    count_nodes,
    covers_component,
    hybrid_route,
    prepare,
    prepare_schedule,
    route,
    route_many,
    route_on_network,
)
from repro.core.broadcast import broadcast_on_network
from repro.core.reliable_broadcast import (
    QuorumThresholds,
    ReliableBroadcastResult,
    broadcast_reliably,
)
from repro.network import (
    AdHocNetwork,
    ByzantinePlan,
    FailurePlan,
    FaultModel,
    DynamicOutcome,
    Message,
    Protocol,
    Simulator,
    TopologySchedule,
    build_graph_network,
    build_unit_disk_network,
    route_many_over_schedule,
    route_over_schedule,
)
from repro.baselines import (
    RoutingAttempt,
    dfs_token_route,
    flood_broadcast,
    flood_route,
    gfg_route,
    greedy_geographic_route,
    random_walk_route,
)
from repro.api import (
    BroadcastReliableRequest,
    BroadcastRequest,
    CompareRequest,
    ConformanceRequest,
    ConnectivityRequest,
    CountRequest,
    RouteBatchRequest,
    RouteRequest,
    ScheduleRouteRequest,
    Session,
    SweepRequest,
    TaskResult,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "GraphStructureError",
    "GeometryError",
    "SequenceError",
    "RoutingError",
    "SimulationError",
    "MemoryBudgetExceeded",
    # graphs
    "LabeledGraph",
    "generators",
    "connected_component",
    "is_connected",
    "reduce_to_three_regular",
    # geometry
    "Point",
    "Deployment",
    "random_deployment",
    "grid_deployment",
    "unit_disk_graph",
    "gabriel_subgraph",
    # core
    "WalkState",
    "ExplicitSequence",
    "covers_component",
    "RandomSequenceProvider",
    "CertifiedSequenceProvider",
    "MemoryMeter",
    "Direction",
    "RouteOutcome",
    "RouteResult",
    "route",
    "route_on_network",
    "route_many",
    "PreparedNetwork",
    "PreparedSchedule",
    "prepare",
    "prepare_schedule",
    "BroadcastResult",
    "broadcast",
    "broadcast_on_network",
    "CountingResult",
    "count_nodes",
    "HybridResult",
    "hybrid_route",
    # reliable broadcast under Byzantine faults
    "QuorumThresholds",
    "ReliableBroadcastResult",
    "broadcast_reliably",
    "ByzantinePlan",
    "FailurePlan",
    "FaultModel",
    # network
    "AdHocNetwork",
    "DynamicOutcome",
    "Message",
    "Protocol",
    "Simulator",
    "TopologySchedule",
    "build_graph_network",
    "build_unit_disk_network",
    "route_over_schedule",
    "route_many_over_schedule",
    # baselines
    "RoutingAttempt",
    "random_walk_route",
    "flood_route",
    "flood_broadcast",
    "greedy_geographic_route",
    "gfg_route",
    "dfs_token_route",
    # unified task API (the facade; full surface in repro.api)
    "Session",
    "TaskResult",
    "RouteRequest",
    "RouteBatchRequest",
    "ScheduleRouteRequest",
    "BroadcastRequest",
    "BroadcastReliableRequest",
    "CountRequest",
    "ConnectivityRequest",
    "CompareRequest",
    "SweepRequest",
    "ConformanceRequest",
    "__version__",
]
