"""Spectral-gap certification for the zig-zag machinery.

A *spectral certificate* records the measured second eigenvalue of a graph's
random-walk matrix together with the bound it was checked against.  The main
transformation's per-round reports are lists of these, which is how the
ablation benchmark shows the gap being amplified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import second_eigenvalue, spectral_gap

__all__ = ["SpectralCertificate", "certify_expander", "spectral_report"]


@dataclass(frozen=True)
class SpectralCertificate:
    """The measured spectral data of one graph."""

    num_vertices: int
    degree: int
    second_eigenvalue: float
    bound: Optional[float]

    @property
    def gap(self) -> float:
        """Normalised spectral gap ``1 - lambda_2``."""
        return 1.0 - self.second_eigenvalue

    @property
    def satisfied(self) -> bool:
        """True when the measured eigenvalue is within the requested bound."""
        return self.bound is None or self.second_eigenvalue <= self.bound + 1e-9


def certify_expander(
    graph: LabeledGraph, lambda_bound: Optional[float] = None
) -> SpectralCertificate:
    """Measure ``lambda_2`` of ``graph`` and package it as a certificate."""
    degree = graph.require_regular()
    return SpectralCertificate(
        num_vertices=graph.num_vertices,
        degree=degree,
        second_eigenvalue=second_eigenvalue(graph),
        bound=lambda_bound,
    )


def spectral_report(graphs: Sequence[LabeledGraph]) -> List[SpectralCertificate]:
    """Certificates for a sequence of graphs (e.g. the rounds of the recursion)."""
    return [certify_expander(graph) for graph in graphs]
