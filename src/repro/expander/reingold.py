"""The main transformation and a deterministic exploration-sequence provider.

Reingold's algorithm turns any connected 3-regular graph into a constant-gap
expander by iterating

    ``G_{i+1} = (G_i ⓩ H) ^ k``

for a fixed base expander ``H`` and powering exponent ``k`` chosen so the
degrees stay type-consistent (``deg(H)^(2k) = deg(G_i)``).  After
``O(log n)`` rounds the result has logarithmic diameter, which is what makes
log-space exploration — and hence universal exploration sequences — possible.

:func:`main_transformation` implements the recursion literally (on graphs
small enough to enumerate), reporting the spectral gap after every round so
the amplification is observable.  As DESIGN.md documents, the reproduction
uses small base expanders, far below the constants the theorem requires, so
the gap amplification is an empirical observation here rather than a proved
invariant.

:class:`ExpanderSequenceProvider` is the derandomized counterpart of
:class:`repro.core.universal.RandomSequenceProvider`: its offsets are produced
with no randomness at all, by walking a fixed certified base expander and
reading off vertex labels.  Wrapped in a
:class:`~repro.core.universal.CertifiedSequenceProvider` it gives a fully
deterministic, certification-backed sequence source for the routing layer —
the practical stand-in for Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.exploration import ExplicitSequence
from repro.core.universal import SequenceProvider, default_sequence_length
from repro.errors import GraphStructureError
from repro.expander.base import complete_with_self_loops
from repro.expander.rotation_ops import add_self_loops, graph_power, zigzag_product
from repro.expander.spectral import SpectralCertificate, certify_expander
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["MainTransformationResult", "main_transformation", "ExpanderSequenceProvider"]


@dataclass(frozen=True)
class MainTransformationResult:
    """The rounds of the main transformation and their spectral certificates."""

    rounds: Tuple[LabeledGraph, ...]
    certificates: Tuple[SpectralCertificate, ...]
    base_expander: LabeledGraph
    powering_exponent: int

    @property
    def final_graph(self) -> LabeledGraph:
        """The graph after the last round."""
        return self.rounds[-1]

    @property
    def gap_history(self) -> Tuple[float, ...]:
        """Spectral gap after every round (round 0 = the regularised input)."""
        return tuple(certificate.gap for certificate in self.certificates)


def main_transformation(
    graph: LabeledGraph,
    base_expander: Optional[LabeledGraph] = None,
    rounds: int = 3,
    powering_exponent: int = 1,
) -> MainTransformationResult:
    """Iterate ``G_{i+1} = (G_i ⓩ H) ^ k`` for ``rounds`` rounds.

    Parameters
    ----------
    graph:
        Any connected regular graph (3-regular in the paper's pipeline).
    base_expander:
        The fixed small expander ``H``.  Its vertex count must equal the
        degree ``D`` of the regularised input, and its degree ``d`` must
        satisfy ``d ** (2 * powering_exponent) == D`` so the recursion is
        type-consistent.  When omitted, ``H`` is the complete graph with
        self-loops on ``d**(2k)`` vertices with ``d`` chosen as the smallest
        value making ``d**(2k)`` at least the input's degree.
    rounds:
        Number of recursion rounds (the theory needs ``O(log n)``).
    powering_exponent:
        The ``k`` of the recursion.

    Notes
    -----
    The vertex count multiplies by ``|V(H)|`` every round, so keep the inputs
    small (tests use graphs with at most a few dozen vertices and 2 rounds).
    """
    if rounds < 1:
        raise GraphStructureError("main_transformation requires at least one round")
    if powering_exponent < 1:
        raise GraphStructureError("powering_exponent must be at least 1")
    input_degree = graph.require_regular()

    if base_expander is None:
        # Default H: the 4-regular circulant on 16^k vertices.  It is
        # connected and non-bipartite (both required for the product to stay
        # connected with lambda < 1) and satisfies the type constraint
        # d^(2k) = |V(H)| with d = 4.  Its spectral gap is modest; pass a
        # stronger expander (e.g. margulis_expander or
        # certified_random_expander) for the gap-amplification ablation.
        from repro.graphs.generators import circulant_graph

        size = 16 ** powering_exponent
        if size < max(2, input_degree):
            raise GraphStructureError(
                "no default base expander fits this input degree; pass one explicitly"
            )
        base_expander = circulant_graph(size, offsets=(1, 2))
    small_degree = base_expander.require_regular()
    big_degree = base_expander.num_vertices
    if small_degree ** (2 * powering_exponent) != big_degree:
        raise GraphStructureError(
            "type mismatch: the base expander must have d^(2k) vertices where d is "
            f"its degree and k the powering exponent (got {big_degree} vertices, "
            f"degree {small_degree}, k={powering_exponent})"
        )

    current = add_self_loops(graph, big_degree) if input_degree < big_degree else graph
    if current.require_regular() != big_degree:
        raise GraphStructureError(
            f"input degree {current.require_regular()} exceeds the base expander size {big_degree}"
        )
    history: List[LabeledGraph] = [current]
    for _ in range(rounds):
        product = zigzag_product(current, base_expander)
        current = graph_power(product, powering_exponent)
        history.append(current)
    certificates = tuple(certify_expander(g) for g in history)
    return MainTransformationResult(
        rounds=tuple(history),
        certificates=certificates,
        base_expander=base_expander,
        powering_exponent=powering_exponent,
    )


class ExpanderSequenceProvider(SequenceProvider):
    """Deterministic exploration sequences from walks on a fixed expander.

    The offset ``T_n[i]`` is computed by walking the base expander ``H`` from
    vertex 0, choosing at step ``j`` the port given by the ``j``-th digit of a
    deterministic counter, and emitting the visited vertex labels modulo 3.
    The construction involves no randomness whatsoever — every node of the
    network recomputes the same values, as the paper's model requires — and
    the walk's rapid mixing on ``H`` is what makes the emitted offsets
    behave pseudo-randomly.  Universality is then established per size bound
    by certification (see module docstring).
    """

    def __init__(
        self,
        base_expander: Optional[LabeledGraph] = None,
        length_multiplier: int = 1,
    ) -> None:
        self._base = base_expander if base_expander is not None else complete_with_self_loops(16)
        self._degree = self._base.require_regular()
        self._length_multiplier = max(1, length_multiplier)
        self._cache: Dict[int, ExplicitSequence] = {}

    def with_multiplier(self, multiplier: int) -> "ExpanderSequenceProvider":
        """Return a provider identical to this one but with a longer budget."""
        return ExpanderSequenceProvider(self._base, length_multiplier=multiplier)

    def _offsets(self, length: int, stride: int) -> List[int]:
        offsets: List[int] = []
        vertex = 0
        entry = 0
        counter = stride
        for _ in range(length):
            # Deterministic port choice: mix the counter with the current
            # entry port; the walk on the expander scrambles the low-entropy
            # counter into well-spread vertex labels.
            port = (counter + entry * 31) % self._degree
            vertex, entry = self._base.rotation(vertex, port)
            offsets.append((vertex + entry) % 3)
            counter = (counter * 2862933555777941757 + 3037000493) % (2 ** 63)
        return offsets

    def sequence_for(self, n: int) -> ExplicitSequence:
        if n not in self._cache:
            length = default_sequence_length(n) * self._length_multiplier
            self._cache[n] = ExplicitSequence(self._offsets(length, stride=n + 1))
        return self._cache[n]
