"""Rotation-map operations: self-loop padding, powering and the zig-zag product.

All operations consume and produce
:class:`~repro.graphs.labeled_graph.LabeledGraph` instances (which *are*
rotation maps) and keep explicit mappings from the composite vertices of the
result back to the operands, so tests can verify the defining identities
vertex by vertex.

Conventions follow Reingold / Rozenman–Vadhan:

* ``G^k`` — a step along port ``(a_1, ..., a_k)`` follows the ports in order;
  the arrival port is the reversed tuple of arrival ports.
* ``G ⓩ H`` — for ``G`` a ``D``-regular graph and ``H`` a ``d``-regular graph
  on ``D`` vertices, the product has vertex set ``V(G) × [D]`` and degree
  ``d²``; a step along port ``(i, j)`` performs a small H-step ``i``, a big
  G-step along the resulting port, and a small H-step ``j``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import GraphStructureError, NotRegularError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["add_self_loops", "graph_square", "graph_power", "zigzag_product"]

HalfEdge = Tuple[int, int]


def add_self_loops(graph: LabeledGraph, target_degree: int) -> LabeledGraph:
    """Pad every vertex with half-loops until it has ``target_degree`` ports.

    This is the standard regularisation step before the zig-zag recursion:
    self-loops do not change connectivity and only dilute the spectral gap by
    a known factor.
    """
    if target_degree < graph.max_degree():
        raise GraphStructureError(
            f"target degree {target_degree} is below the maximum degree {graph.max_degree()}"
        )
    rotation: Dict[HalfEdge, HalfEdge] = graph.rotation_map()
    for v in graph.vertices:
        for port in range(graph.degree(v), target_degree):
            rotation[(v, port)] = (v, port)
    return LabeledGraph(rotation)


def graph_square(graph: LabeledGraph) -> LabeledGraph:
    """The square ``G²`` of a regular graph (paths of length 2 become edges)."""
    return graph_power(graph, 2)


def graph_power(graph: LabeledGraph, exponent: int) -> LabeledGraph:
    """The ``k``-th power ``G^k`` of a ``D``-regular graph as a rotation map.

    The result is ``D^k``-regular on the same vertex set; port
    ``(a_1, ..., a_k)`` (encoded as an integer in base ``D``) walks the ports
    in order, and the arrival port encodes the reversed arrival ports, making
    the result a valid involution.
    """
    if exponent < 1:
        raise GraphStructureError("graph_power requires exponent >= 1")
    degree = graph.require_regular()
    if degree == 0:
        raise NotRegularError("graph_power requires positive degree")
    if exponent == 1:
        return LabeledGraph(graph.rotation_map())

    def encode(ports: Tuple[int, ...]) -> int:
        value = 0
        for port in ports:
            value = value * degree + port
        return value

    rotation: Dict[HalfEdge, HalfEdge] = {}
    for v in graph.vertices:
        for ports in itertools.product(range(degree), repeat=exponent):
            current = v
            arrival_ports: List[int] = []
            for port in ports:
                current, arrived = graph.rotation(current, port)
                arrival_ports.append(arrived)
            rotation[(v, encode(ports))] = (current, encode(tuple(reversed(arrival_ports))))
    return LabeledGraph(rotation)


def zigzag_product(big: LabeledGraph, small: LabeledGraph) -> LabeledGraph:
    """The zig-zag product ``big ⓩ small``.

    ``big`` must be ``D``-regular and ``small`` must be a ``d``-regular graph
    whose vertex set is exactly ``0 .. D-1``.  The result is a ``d²``-regular
    graph on ``|V(big)| * D`` vertices (vertex ``(v, a)`` is encoded as
    ``v * D + a``), connected whenever both operands are connected, and with
    second eigenvalue bounded by a function of the operands' — the property
    the main transformation amplifies.
    """
    big_degree = big.require_regular()
    small_degree = small.require_regular()
    if set(small.vertices) != set(range(big_degree)):
        raise GraphStructureError(
            "the small graph's vertex set must be exactly 0..D-1 where D is the "
            f"big graph's degree (got {small.num_vertices} vertices for degree {big_degree})"
        )

    def vertex(v: int, a: int) -> int:
        return v * big_degree + a

    def port(i: int, j: int) -> int:
        return i * small_degree + j

    rotation: Dict[HalfEdge, HalfEdge] = {}
    for v in big.vertices:
        for a in range(big_degree):
            for i in range(small_degree):
                for j in range(small_degree):
                    # Zig: small step i inside the cloud of v.
                    a_mid, i_back = small.rotation(a, i)
                    # Big step along the port the zig selected.
                    w, b_mid = big.rotation(v, a_mid)
                    # Zag: small step j inside the cloud of w.
                    b_final, j_back = small.rotation(b_mid, j)
                    rotation[(vertex(v, a), port(i, j))] = (
                        vertex(w, b_final),
                        port(j_back, i_back),
                    )
    return LabeledGraph(rotation)
