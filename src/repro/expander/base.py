"""Explicit base expanders for the zig-zag recursion.

The main transformation needs one fixed "small" graph ``H`` with a good
spectral gap.  Three constructions are provided:

* :func:`complete_with_self_loops` — the complete graph with a self-loop at
  every vertex; its walk matrix is the averaging operator, so its second
  eigenvalue is 0 (a perfect expander, at the price of degree = size).
* :func:`margulis_expander` — the Margulis/Gabber–Galil 8-regular expander on
  the torus ``Z_m × Z_m``; the classical explicit constant-gap family.
* :func:`certified_random_expander` — a deterministic pseudo-random
  ``d``-regular graph re-sampled (with deterministic seeds) until its second
  eigenvalue passes a requested bound; "explicit enough" for experiments and
  honest about how the bound was obtained (a spectral certificate, not a
  theorem).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import GraphStructureError
from repro.graphs.generators import random_regular_graph
from repro.graphs.labeled_graph import LabeledGraph
from repro.graphs.properties import second_eigenvalue

__all__ = [
    "complete_with_self_loops",
    "margulis_expander",
    "certified_random_expander",
]

HalfEdge = Tuple[int, int]


def complete_with_self_loops(size: int) -> LabeledGraph:
    """Complete graph on ``size`` vertices plus one self-loop per vertex.

    Every vertex has degree ``size`` (ports: one per other vertex plus the
    loop), and the random-walk matrix is exactly the uniform averaging
    operator, so ``lambda_2 = 0``.  It is the textbook base case for zig-zag
    constructions when degree economy does not matter.
    """
    if size < 2:
        raise GraphStructureError("complete_with_self_loops requires size >= 2")
    rotation: Dict[HalfEdge, HalfEdge] = {}
    for v in range(size):
        for u in range(size):
            if u == v:
                rotation[(v, v)] = (v, v)
            else:
                # Port u of vertex v leads to vertex u arriving on its port v.
                rotation[(v, u)] = (u, v)
    return LabeledGraph(rotation)


def margulis_expander(side: int) -> LabeledGraph:
    """The Margulis / Gabber–Galil 8-regular expander on ``Z_side × Z_side``.

    Vertex ``(x, y)`` (encoded as ``x * side + y``) is connected to

        ``(x ± 2y, y)``, ``(x ± (2y + 1), y)``, ``(x, y ± 2x)``, ``(x, y ± (2x + 1))``

    with arithmetic modulo ``side``.  The family has a constant spectral gap
    for every ``side``; the graph is an 8-regular multigraph (coinciding
    images become parallel edges).
    """
    if side < 2:
        raise GraphStructureError("margulis_expander requires side >= 2")
    n = side * side

    def encode(x: int, y: int) -> int:
        return (x % side) * side + (y % side)

    def images(x: int, y: int) -> Tuple[int, ...]:
        return (
            encode(x + 2 * y, y),
            encode(x - 2 * y, y),
            encode(x + 2 * y + 1, y),
            encode(x - 2 * y - 1, y),
            encode(x, y + 2 * x),
            encode(x, y - 2 * x),
            encode(x, y + 2 * x + 1),
            encode(x, y - 2 * x - 1),
        )

    # The eight maps come in inverse pairs: port p at a vertex is matched with
    # the inverse map's port at the image vertex.
    inverse_port = {0: 1, 1: 0, 2: 3, 3: 2, 4: 5, 5: 4, 6: 7, 7: 6}
    rotation: Dict[HalfEdge, HalfEdge] = {}
    for x in range(side):
        for y in range(side):
            v = encode(x, y)
            for port, w in enumerate(images(x, y)):
                rotation[(v, port)] = (w, inverse_port[port])
    graph = LabeledGraph(rotation)
    return graph


def certified_random_expander(
    size: int,
    degree: int,
    lambda_bound: float = 0.9,
    max_attempts: int = 16,
    seed: int = 0,
) -> LabeledGraph:
    """A deterministic pseudo-random ``degree``-regular graph with certified gap.

    Candidate graphs are generated with deterministic seeds ``seed, seed+1,
    ...`` and the first whose second eigenvalue is at most ``lambda_bound`` is
    returned.  Raises when no candidate passes within ``max_attempts`` — make
    the bound weaker or the degree larger in that case.
    """
    if size * degree % 2 != 0:
        raise GraphStructureError("size * degree must be even for a regular graph")
    last_lambda = None
    for attempt in range(max_attempts):
        candidate = random_regular_graph(size, degree, seed=seed + attempt)
        lam = second_eigenvalue(candidate)
        last_lambda = lam
        if lam <= lambda_bound:
            return candidate
    raise GraphStructureError(
        f"no {degree}-regular graph on {size} vertices with lambda <= {lambda_bound} "
        f"found in {max_attempts} attempts (last lambda {last_lambda:.3f})"
    )
