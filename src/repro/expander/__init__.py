"""The zig-zag / derandomization substrate behind Theorem 4.

The paper's guarantee rests on Reingold's log-space construction of universal
exploration sequences, which in turn rests on the zig-zag product machinery
(turn any connected bounded-degree graph into an expander by repeatedly
squaring and zig-zagging with a fixed base expander; an expander has
logarithmic diameter, so short walks suffice).  This subpackage implements
that machinery on rotation maps:

* :mod:`repro.expander.rotation_ops` — graph powering, self-loop padding and
  the zig-zag product itself, all on
  :class:`~repro.graphs.labeled_graph.LabeledGraph` rotation maps;
* :mod:`repro.expander.base` — explicit base expanders (complete graphs with
  self-loops, Margulis-style constructions, spectrally certified pseudo-random
  regular graphs);
* :mod:`repro.expander.spectral` — spectral-gap certification;
* :mod:`repro.expander.reingold` — the main transformation
  ``G_{i+1} = (G_i² ⓩ H)`` iterated for a configurable number of rounds, and
  a fully deterministic exploration-sequence provider derived from walks on a
  fixed base expander.

As documented in DESIGN.md, the reproduction does not chase the (astronomical)
constants of the original construction: the base expanders here are small, so
the per-round spectral-gap amplification is demonstrated empirically rather
than guaranteed by the theorem's parameters, and the deterministic sequence
provider is certified for universality by
:class:`repro.core.universal.CertifiedSequenceProvider` instead of being
proved universal analytically.
"""

from repro.expander.rotation_ops import (
    add_self_loops,
    graph_power,
    graph_square,
    zigzag_product,
)
from repro.expander.base import (
    complete_with_self_loops,
    margulis_expander,
    certified_random_expander,
)
from repro.expander.spectral import SpectralCertificate, certify_expander, spectral_report
from repro.expander.reingold import (
    ExpanderSequenceProvider,
    MainTransformationResult,
    main_transformation,
)

__all__ = [
    "add_self_loops",
    "graph_power",
    "graph_square",
    "zigzag_product",
    "complete_with_self_loops",
    "margulis_expander",
    "certified_random_expander",
    "SpectralCertificate",
    "certify_expander",
    "spectral_report",
    "ExpanderSequenceProvider",
    "MainTransformationResult",
    "main_transformation",
]
