"""Degree reduction to 3-regular graphs (Fig. 1 of the paper).

The exploration-sequence machinery of Section 2 is phrased for 3-regular
graphs; an arbitrary network ``G`` is first transformed into a 3-regular
multigraph ``G'`` in which every node ``v`` "simulates" ``O(deg(v))`` virtual
nodes of degree 3.  The construction follows the standard recipe the paper
cites (Koucky's thesis, p. 80):

* a vertex of degree ``d >= 3`` becomes a cycle of ``d`` virtual nodes; the
  k-th virtual node inherits the original edge that had port ``k`` at ``v``
  on its port 0 and uses ports 1/2 for the cycle;
* a vertex of degree 2 becomes two virtual nodes joined by a double edge;
* a vertex of degree 1 becomes one virtual node with a self-loop occupying
  its two spare ports;
* an isolated vertex becomes one virtual node with three half-loops.

The transformation at most squares the number of vertices (in fact
``|V'| = sum_v max(deg(v), 1) <= 2|E| + |V|``) and preserves connectivity of
every component, which is all Theorem 1 needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import GraphStructureError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = ["DegreeReducedGraph", "reduce_to_three_regular"]

Vertex = int
Port = int
HalfEdge = Tuple[Vertex, Port]

#: Port of every virtual node reserved for its (unique) external edge.
EXTERNAL_PORT: Port = 0
#: Port connecting a virtual node to the next node of its cycle.
CYCLE_NEXT_PORT: Port = 1
#: Port connecting a virtual node to the previous node of its cycle.
CYCLE_PREV_PORT: Port = 2


@dataclass(frozen=True)
class DegreeReducedGraph:
    """Result of the Fig. 1 transformation.

    Attributes
    ----------
    original:
        The input graph ``G``.
    graph:
        The 3-regular output graph ``G'`` with vertices ``0..|V'| - 1``.
    cluster_of:
        Maps every original vertex to the tuple of virtual vertices that
        simulate it, indexed by the original port they carry (a vertex of
        degree ``d >= 1`` has exactly ``d`` virtual nodes; isolated and
        degree-1/2 vertices have 1, 1 and 2 respectively).
    original_of:
        Maps every virtual vertex back to the original vertex it simulates.
    """

    original: LabeledGraph
    graph: LabeledGraph
    cluster_of: Mapping[Vertex, Tuple[Vertex, ...]]
    original_of: Mapping[Vertex, Vertex]

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #

    def gateway(self, original_vertex: Vertex) -> Vertex:
        """Canonical virtual vertex representing ``original_vertex``.

        Routing sources/targets given as original vertices enter ``G'``
        through this vertex; reaching *any* virtual vertex of the cluster
        counts as reaching the original vertex.
        """
        cluster = self.cluster_of.get(original_vertex)
        if cluster is None:
            raise GraphStructureError(f"unknown original vertex {original_vertex!r}")
        return cluster[0]

    def cluster(self, original_vertex: Vertex) -> Tuple[Vertex, ...]:
        """All virtual vertices simulating ``original_vertex``."""
        cluster = self.cluster_of.get(original_vertex)
        if cluster is None:
            raise GraphStructureError(f"unknown original vertex {original_vertex!r}")
        return cluster

    def to_original(self, virtual_vertex: Vertex) -> Vertex:
        """Original vertex simulated by ``virtual_vertex``."""
        original = self.original_of.get(virtual_vertex)
        if original is None:
            raise GraphStructureError(f"unknown virtual vertex {virtual_vertex!r}")
        return original

    def simulates(self, virtual_vertex: Vertex, original_vertex: Vertex) -> bool:
        """Return ``True`` when ``virtual_vertex`` belongs to ``original_vertex``'s cluster."""
        return self.original_of.get(virtual_vertex) == original_vertex

    def cluster_size(self, original_vertex: Vertex) -> int:
        """Number of virtual nodes the original vertex simulates."""
        return len(self.cluster(original_vertex))

    def carrier(self, original_vertex: Vertex, original_port: Port) -> Vertex:
        """Virtual vertex of ``original_vertex`` carrying its ``original_port``.

        The external edge that had label ``original_port`` at the original
        vertex is attached (on port 0) to exactly this virtual vertex; the
        distributed routing protocol uses this lookup to translate a message's
        physical arrival port into the corresponding virtual walk position.
        """
        cluster = self.cluster(original_vertex)
        if len(cluster) == 1:
            return cluster[0]
        if not 0 <= original_port < len(cluster):
            raise GraphStructureError(
                f"vertex {original_vertex!r} has no original port {original_port!r}"
            )
        return cluster[original_port]

    # ------------------------------------------------------------------ #
    # Aggregate statistics (used by the E1 benchmark)
    # ------------------------------------------------------------------ #

    @property
    def blowup_factor(self) -> float:
        """``|V'| / |V|`` — the size increase caused by the reduction."""
        if self.original.num_vertices == 0:
            return 1.0
        return self.graph.num_vertices / self.original.num_vertices

    def virtual_vertex_count(self) -> int:
        """Total number of virtual vertices in ``G'``."""
        return self.graph.num_vertices

    def external_edge_count(self) -> int:
        """Number of edges of ``G'`` that correspond to original edges."""
        count = 0
        for edge in self.graph.edges():
            if edge.is_self_loop:
                continue
            if self.original_of[edge.u] != self.original_of[edge.v]:
                count += 1
        return count


def _virtual_counts(graph: LabeledGraph) -> Dict[Vertex, int]:
    """Number of virtual nodes each original vertex expands into."""
    counts: Dict[Vertex, int] = {}
    for v in graph.vertices:
        degree = graph.degree(v)
        if degree >= 3:
            counts[v] = degree
        elif degree == 2:
            counts[v] = 2
        else:  # degree 0 or 1
            counts[v] = 1
    return counts


def reduce_to_three_regular(graph: LabeledGraph) -> DegreeReducedGraph:
    """Apply the Fig. 1 degree reduction and return the mapped result.

    The output graph is always 3-regular (checked), and the transformation is
    connectivity-preserving: two original vertices are in the same component
    of ``G`` exactly when their clusters are in the same component of ``G'``.
    """
    counts = _virtual_counts(graph)

    # Assign contiguous ids to virtual nodes: cluster_of[v][k] is the virtual
    # node carrying original port k of v (for degree >= 1; for degree 2 the
    # two virtual nodes carry ports 0 and 1; for degree <= 1 there is a single
    # virtual node carrying port 0 if it exists).
    cluster_of: Dict[Vertex, Tuple[Vertex, ...]] = {}
    original_of: Dict[Vertex, Vertex] = {}
    next_id = 0
    for v in graph.vertices:
        members = tuple(range(next_id, next_id + counts[v]))
        cluster_of[v] = members
        for member in members:
            original_of[member] = v
        next_id += counts[v]

    rotation: Dict[HalfEdge, HalfEdge] = {}

    def carrier(v: Vertex, original_port: Port) -> Vertex:
        """Virtual node of ``v`` that carries the original port ``original_port``."""
        cluster = cluster_of[v]
        return cluster[original_port] if len(cluster) > 1 else cluster[0]

    # Intra-cluster edges.
    for v in graph.vertices:
        degree = graph.degree(v)
        cluster = cluster_of[v]
        if degree >= 3:
            d = len(cluster)
            for k in range(d):
                nxt = cluster[(k + 1) % d]
                rotation[(cluster[k], CYCLE_NEXT_PORT)] = (nxt, CYCLE_PREV_PORT)
                rotation[(nxt, CYCLE_PREV_PORT)] = (cluster[k], CYCLE_NEXT_PORT)
        elif degree == 2:
            a, b = cluster
            rotation[(a, CYCLE_NEXT_PORT)] = (b, CYCLE_NEXT_PORT)
            rotation[(b, CYCLE_NEXT_PORT)] = (a, CYCLE_NEXT_PORT)
            rotation[(a, CYCLE_PREV_PORT)] = (b, CYCLE_PREV_PORT)
            rotation[(b, CYCLE_PREV_PORT)] = (a, CYCLE_PREV_PORT)
        elif degree == 1:
            (a,) = cluster
            rotation[(a, CYCLE_NEXT_PORT)] = (a, CYCLE_PREV_PORT)
            rotation[(a, CYCLE_PREV_PORT)] = (a, CYCLE_NEXT_PORT)
        else:  # isolated vertex: three half-loops keep it 3-regular
            (a,) = cluster
            rotation[(a, EXTERNAL_PORT)] = (a, EXTERNAL_PORT)
            rotation[(a, CYCLE_NEXT_PORT)] = (a, CYCLE_NEXT_PORT)
            rotation[(a, CYCLE_PREV_PORT)] = (a, CYCLE_PREV_PORT)

    # External edges: every original edge (v port a) <-> (u port b) connects
    # the carrier virtual nodes on their external port.
    for edge in graph.edges():
        left = carrier(edge.u, edge.u_port)
        right = carrier(edge.v, edge.v_port)
        if edge.is_half_loop:
            # A half-loop at an original vertex becomes a half-loop on the
            # external port of its carrier virtual node.
            rotation[(left, EXTERNAL_PORT)] = (left, EXTERNAL_PORT)
            continue
        rotation[(left, EXTERNAL_PORT)] = (right, EXTERNAL_PORT)
        rotation[(right, EXTERNAL_PORT)] = (left, EXTERNAL_PORT)

    # A self-loop of an original vertex occupying two ports connects two
    # distinct virtual nodes of the same cluster, which the loop above already
    # handles correctly (left != right as long as the cluster has >= 2
    # members; otherwise it degenerates into the half-loop case).
    reduced = LabeledGraph(rotation)
    reduced.require_regular(3)
    return DegreeReducedGraph(
        original=graph,
        graph=reduced,
        cluster_of=cluster_of,
        original_of=original_of,
    )
