"""Structural and spectral properties of labeled graphs.

These are analysis helpers used by the experiment harness: degree statistics
(to report the blow-up of the Fig. 1 degree reduction), diameters (to relate
routing cost to the graph), and the normalised spectral gap (the quantity the
zig-zag machinery of :mod:`repro.expander` improves round after round).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

try:  # pragma: no cover - exercised by the no-NumPy CI job
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

from repro.graphs.connectivity import connected_components, shortest_path_lengths
from repro.graphs.labeled_graph import LabeledGraph

#: True when NumPy imported; the matrix/spectral helpers below need it, the
#: structural ones (histograms, diameters, summaries) do not.
HAVE_NUMPY = np is not None


def _require_numpy(what: str) -> None:
    if np is None:
        raise ImportError(
            f"{what} needs NumPy, which is not installed; the structural "
            "helpers of repro.graphs.properties work without it"
        )

__all__ = [
    "degree_histogram",
    "is_simple",
    "adjacency_matrix",
    "transition_matrix",
    "spectral_gap",
    "second_eigenvalue",
    "diameter",
    "GraphSummary",
    "graph_summary",
]


def degree_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """Return ``{degree: count}`` over all vertices."""
    return dict(Counter(graph.degree(v) for v in graph.vertices))


def is_simple(graph: LabeledGraph) -> bool:
    """Return ``True`` when the graph has no self-loops and no parallel edges."""
    return graph.self_loop_count() == 0 and graph.parallel_edge_count() == 0


def adjacency_matrix(graph: LabeledGraph) -> "np.ndarray":
    """Dense adjacency matrix with multi-edge multiplicities.

    A half-loop contributes 1 to the diagonal and a two-port self-loop
    contributes 2, matching the convention that the row sum equals the degree.
    """
    _require_numpy("adjacency_matrix")
    index = {v: i for i, v in enumerate(graph.vertices)}
    n = graph.num_vertices
    matrix = np.zeros((n, n), dtype=float)
    for v in graph.vertices:
        for port in range(graph.degree(v)):
            w, _ = graph.rotation(v, port)
            matrix[index[v], index[w]] += 1.0
    # Each non-loop edge was counted once from each side; loops were counted
    # once per port, which is exactly the degree contribution we want.
    return matrix


def transition_matrix(graph: LabeledGraph) -> "np.ndarray":
    """Row-stochastic random-walk transition matrix ``P[v, w]``."""
    _require_numpy("transition_matrix")
    matrix = adjacency_matrix(graph)
    degrees = matrix.sum(axis=1)
    if np.any(degrees == 0):
        raise ValueError("transition matrix undefined for degree-0 vertices")
    return matrix / degrees[:, None]


#: Above this vertex count the spectral routines switch to sparse linear algebra.
_SPARSE_THRESHOLD = 1500


def second_eigenvalue(graph: LabeledGraph) -> float:
    """Second largest eigenvalue (in absolute value) of the walk matrix.

    For a d-regular graph this is the usual normalised ``lambda(G)`` whose
    distance from 1 is the spectral gap; smaller means better expansion.
    Small graphs use a dense symmetric eigendecomposition; larger graphs (as
    produced by a couple of zig-zag rounds) switch to sparse Lanczos iteration
    so the computation stays within memory.
    """
    _require_numpy("second_eigenvalue")
    if graph.num_vertices <= 1:
        return 0.0
    if graph.num_vertices <= _SPARSE_THRESHOLD:
        # The walk matrix of an undirected graph is similar to the symmetric
        # matrix D^{-1/2} A D^{-1/2}; use that form for numerical stability.
        adjacency = adjacency_matrix(graph)
        degrees = adjacency.sum(axis=1)
        scale = 1.0 / np.sqrt(degrees)
        symmetric = adjacency * scale[:, None] * scale[None, :]
        eigenvalues = np.linalg.eigvalsh(symmetric)
        eigenvalues = np.sort(np.abs(eigenvalues))[::-1]
        return float(eigenvalues[1]) if len(eigenvalues) > 1 else 0.0

    from scipy.sparse import coo_matrix
    from scipy.sparse.linalg import eigsh

    index = {v: i for i, v in enumerate(graph.vertices)}
    rows, cols, data = [], [], []
    degrees = np.array([graph.degree(v) for v in graph.vertices], dtype=float)
    scale = 1.0 / np.sqrt(degrees)
    for v in graph.vertices:
        for port in range(graph.degree(v)):
            w, _ = graph.rotation(v, port)
            i, j = index[v], index[w]
            rows.append(i)
            cols.append(j)
            data.append(scale[i] * scale[j])
    symmetric = coo_matrix((data, (rows, cols)), shape=(len(degrees), len(degrees))).tocsr()
    # The two extreme eigenvalues in absolute value are 1 (trivial) and the
    # quantity we want; ask Lanczos for the top two by magnitude.
    top = eigsh(symmetric, k=2, which="LM", return_eigenvectors=False, tol=1e-8)
    magnitudes = np.sort(np.abs(top))[::-1]
    return float(magnitudes[1]) if len(magnitudes) > 1 else 0.0


def spectral_gap(graph: LabeledGraph) -> float:
    """Normalised spectral gap ``1 - lambda_2`` of the random-walk matrix."""
    return 1.0 - second_eigenvalue(graph)


def diameter(graph: LabeledGraph) -> Optional[int]:
    """Diameter of the graph, or ``None`` when it is disconnected or empty."""
    if graph.num_vertices == 0:
        return None
    best = 0
    for v in graph.vertices:
        distances = shortest_path_lengths(graph, v)
        if len(distances) != graph.num_vertices:
            return None
        best = max(best, max(distances.values()))
    return best


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural summary used in experiment reports."""

    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    is_regular: bool
    num_components: int
    largest_component: int
    self_loops: int
    parallel_edges: int

    def as_row(self) -> List[object]:
        """Return the summary as a list suitable for table rendering."""
        return [
            self.num_vertices,
            self.num_edges,
            self.min_degree,
            self.max_degree,
            self.is_regular,
            self.num_components,
            self.largest_component,
            self.self_loops,
            self.parallel_edges,
        ]


def graph_summary(graph: LabeledGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    components = connected_components(graph)
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        min_degree=graph.min_degree(),
        max_degree=graph.max_degree(),
        is_regular=graph.is_regular(),
        num_components=len(components),
        largest_component=len(components[0]) if components else 0,
        self_loops=graph.self_loop_count(),
        parallel_edges=graph.parallel_edge_count(),
    )
