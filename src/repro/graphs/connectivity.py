"""Connectivity utilities for :class:`~repro.graphs.labeled_graph.LabeledGraph`.

The paper's guarantees are all phrased relative to the *connected component of
the source node* ``C_s`` (Theorem 1 and Section 4).  These helpers compute
components, distances and connectivity predicates; they are the ground truth
the test-suite and the benchmark harness compare the distributed algorithms
against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphStructureError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = [
    "connected_component",
    "connected_components",
    "is_connected",
    "are_connected",
    "shortest_path_lengths",
    "shortest_path",
    "bfs_tree",
    "component_sizes",
]


def connected_component(graph: LabeledGraph, source: int) -> Set[int]:
    """Return the vertex set of the connected component containing ``source``.

    This is the set the paper calls ``C_s``; the routing and counting
    algorithms run in time polynomial in its size.
    """
    if not graph.has_vertex(source):
        raise GraphStructureError(f"unknown vertex {source!r}")
    seen: Set[int] = {source}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        for w in graph.neighbors(v):
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return seen


def connected_components(graph: LabeledGraph) -> List[Set[int]]:
    """Return all connected components, largest first."""
    remaining = set(graph.vertices)
    components: List[Set[int]] = []
    while remaining:
        start = next(iter(remaining))
        component = connected_component(graph, start)
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def component_sizes(graph: LabeledGraph) -> List[int]:
    """Sizes of all connected components, largest first."""
    return [len(component) for component in connected_components(graph)]


def is_connected(graph: LabeledGraph) -> bool:
    """Return ``True`` when the graph has at most one connected component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_component(graph, graph.vertices[0])) == graph.num_vertices


def are_connected(graph: LabeledGraph, u: int, v: int) -> bool:
    """Return ``True`` when ``u`` and ``v`` lie in the same component."""
    return v in connected_component(graph, u)


def shortest_path_lengths(graph: LabeledGraph, source: int) -> Dict[int, int]:
    """Breadth-first distances (in hops) from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphStructureError(f"unknown vertex {source!r}")
    distances: Dict[int, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        for w in graph.neighbors(v):
            if w not in distances:
                distances[w] = distances[v] + 1
                frontier.append(w)
    return distances


def shortest_path(graph: LabeledGraph, source: int, target: int) -> Optional[List[int]]:
    """Return one shortest path from ``source`` to ``target`` or ``None``.

    The path is a list of vertices beginning with ``source`` and ending with
    ``target``.  Used by the analysis layer to compute routing *stretch*.
    """
    if not graph.has_vertex(source) or not graph.has_vertex(target):
        raise GraphStructureError("source or target vertex is unknown")
    if source == target:
        return [source]
    parents: Dict[int, int] = {source: source}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        for w in graph.neighbors(v):
            if w in parents:
                continue
            parents[w] = v
            if w == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            frontier.append(w)
    return None


def bfs_tree(graph: LabeledGraph, source: int) -> Dict[int, Optional[int]]:
    """Return a BFS parent map rooted at ``source`` (root maps to ``None``)."""
    if not graph.has_vertex(source):
        raise GraphStructureError(f"unknown vertex {source!r}")
    parents: Dict[int, Optional[int]] = {source: None}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        for w in graph.neighbors(v):
            if w not in parents:
                parents[w] = v
                frontier.append(w)
    return parents
