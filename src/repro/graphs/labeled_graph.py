"""Port-labeled undirected multigraphs represented by rotation maps.

The paper (Section 2) works with graphs in which every vertex ``v`` assigns
the labels ``0, 1, ..., deg(v) - 1`` to its incident edges, in an arbitrary
way, and the labels at the two endpoints of an edge are unrelated.  The
standard way to encode such a labeling is a *rotation map*:

    Rot(v, i) = (w, j)   whenever the i-th edge of v leads to w and that same
                          edge is the j-th edge of w.

``Rot`` is an involution on the set of (vertex, port) pairs; a self-loop may
either occupy two ports of the same vertex or be a fixed point of the map
(a "half loop", the convention used by Reingold's construction).

:class:`LabeledGraph` stores exactly this map.  It supports multi-edges and
self-loops because both the degree-reduction gadget of Fig. 1 (vertices of
degree one or two receive parallel edges / loops) and the zig-zag machinery
of :mod:`repro.expander` need them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import GraphStructureError, NotRegularError, PortLabelingError

__all__ = ["PortEdge", "LabeledGraph"]

Vertex = int
Port = int
HalfEdge = Tuple[Vertex, Port]


@dataclass(frozen=True)
class PortEdge:
    """One undirected edge together with the port it occupies at each endpoint.

    ``u``/``u_port`` and ``v``/``v_port`` are interchangeable descriptions of
    the two endpoints; a half-loop (fixed point of the rotation map) has
    ``u == v`` and ``u_port == v_port``.
    """

    u: Vertex
    u_port: Port
    v: Vertex
    v_port: Port

    @property
    def is_self_loop(self) -> bool:
        """Return ``True`` when both endpoints are the same vertex."""
        return self.u == self.v

    @property
    def is_half_loop(self) -> bool:
        """Return ``True`` for a loop occupying a single (vertex, port) pair."""
        return self.u == self.v and self.u_port == self.v_port

    def key(self) -> Tuple[HalfEdge, HalfEdge]:
        """Return a canonical, order-independent key for the edge."""
        a = (self.u, self.u_port)
        b = (self.v, self.v_port)
        return (a, b) if a <= b else (b, a)


class LabeledGraph:
    """An undirected multigraph with per-vertex port labels (a rotation map).

    Instances are immutable once constructed: every mutation-style operation
    (relabeling, taking subgraphs, ...) returns a new graph.  This keeps the
    graph safe to share between nodes of the network simulator, which models
    the paper's assumption of a *static* network.
    """

    def __init__(
        self,
        rotation: Mapping[HalfEdge, HalfEdge],
        isolated_vertices: Iterable[Vertex] = (),
    ) -> None:
        """Build a graph from a rotation map.

        Parameters
        ----------
        rotation:
            Mapping ``(v, i) -> (w, j)``.  It must be an involution
            (``rotation[rotation[v, i]] == (v, i)``) and for every vertex the
            set of ports present must be exactly ``0..deg(v) - 1``.
        isolated_vertices:
            Vertices that carry no ports at all (degree 0).  A rotation map
            cannot mention them, so they are listed explicitly.

        Raises
        ------
        PortLabelingError
            If the ports of some vertex are not contiguous starting at 0.
        GraphStructureError
            If the map is not an involution or references unknown half-edges.
        """
        self._rotation: Dict[HalfEdge, HalfEdge] = dict(rotation)
        self._degrees: Dict[Vertex, int] = {v: 0 for v in isolated_vertices}
        ports_seen: Dict[Vertex, set] = {}
        for (v, i) in self._rotation:
            ports_seen.setdefault(v, set()).add(i)
        for v, ports in ports_seen.items():
            degree = len(ports)
            if ports != set(range(degree)):
                raise PortLabelingError(
                    f"vertex {v!r} has ports {sorted(ports)}; expected 0..{degree - 1}"
                )
            self._degrees[v] = degree
        for half_edge, other in self._rotation.items():
            if other not in self._rotation:
                raise GraphStructureError(
                    f"rotation maps {half_edge} to unknown half-edge {other}"
                )
            if self._rotation[other] != half_edge:
                raise GraphStructureError(
                    f"rotation map is not an involution at {half_edge} -> {other}"
                )
        self._vertices: Tuple[Vertex, ...] = tuple(sorted(self._degrees))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        vertices: Optional[Iterable[Vertex]] = None,
        shuffle_ports: Optional[object] = None,
    ) -> "LabeledGraph":
        """Build a graph from an undirected edge list.

        Ports at every vertex are assigned in the order edges are supplied
        (so the labeling is deterministic for a fixed input order).  Self
        loops consume two consecutive ports of their vertex.  Parallel edges
        are allowed and simply occupy distinct ports.

        Parameters
        ----------
        edges:
            Iterable of ``(u, v)`` pairs.
        vertices:
            Optional iterable of vertices to force into the graph even if
            isolated (degree-0 vertices cannot be inferred from edges).
        shuffle_ports:
            Optional :class:`random.Random`-like object; when given, the port
            assignment at every vertex is permuted using it.  This is how the
            test-suite exercises the paper's "for any labeling" quantifier.
        """
        incident: Dict[Vertex, List[Tuple[Vertex, int]]] = {}
        if vertices is not None:
            for v in vertices:
                incident.setdefault(v, [])
        edge_list = list(edges)
        for index, (u, v) in enumerate(edge_list):
            incident.setdefault(u, []).append((v, index))
            incident.setdefault(v, []).append((u, index))

        if shuffle_ports is not None:
            for v in incident:
                shuffle_ports.shuffle(incident[v])

        # endpoint_ports[edge_index] collects the (vertex, port) pairs of the
        # two endpoints of that edge, in the order they were assigned.
        endpoint_ports: Dict[int, List[HalfEdge]] = {i: [] for i in range(len(edge_list))}
        for v, incidences in incident.items():
            for port, (_neighbor, edge_index) in enumerate(incidences):
                endpoint_ports[edge_index].append((v, port))

        rotation: Dict[HalfEdge, HalfEdge] = {}
        for edge_index, halves in endpoint_ports.items():
            if len(halves) != 2:
                raise GraphStructureError(
                    f"edge {edge_list[edge_index]!r} resolved to {len(halves)} endpoints"
                )
            a, b = halves
            rotation[a] = b
            rotation[b] = a
        isolated = [v for v in incident if not incident[v]]
        return cls(rotation, isolated_vertices=isolated)

    @classmethod
    def from_networkx(cls, nx_graph: object) -> "LabeledGraph":
        """Convert a :mod:`networkx` graph (or multigraph) to a labeled graph.

        Vertex identities are preserved; they must be hashable and sortable
        integers (the rest of the library assumes integer vertices).
        """
        edges = [(int(u), int(v)) for u, v in nx_graph.edges()]  # type: ignore[attr-defined]
        vertices = [int(v) for v in nx_graph.nodes()]  # type: ignore[attr-defined]
        return cls.from_edges(edges, vertices=vertices)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def vertices(self) -> Tuple[Vertex, ...]:
        """All vertices, in increasing order."""
        return self._vertices

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half-loops count as one edge)."""
        half_loops = sum(1 for he, other in self._rotation.items() if he == other)
        return (len(self._rotation) - half_loops) // 2 + half_loops

    def degree(self, v: Vertex) -> int:
        """Degree of ``v`` (number of ports; a half-loop contributes one)."""
        try:
            return self._degrees[v]
        except KeyError:
            raise GraphStructureError(f"unknown vertex {v!r}") from None

    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` when ``v`` is a vertex of the graph."""
        return v in self._degrees

    def rotation(self, v: Vertex, port: Port) -> HalfEdge:
        """Return ``Rot(v, port) = (w, j)``: follow port ``port`` out of ``v``.

        ``w`` is the vertex reached and ``j`` the port of ``w`` on which the
        edge arrives.  This is the single primitive the exploration-sequence
        walk of the paper needs at each node, and it is a purely local lookup.
        """
        try:
            return self._rotation[(v, port)]
        except KeyError:
            raise GraphStructureError(f"vertex {v!r} has no port {port!r}") from None

    def neighbor(self, v: Vertex, port: Port) -> Vertex:
        """Vertex reached by leaving ``v`` through ``port``."""
        return self.rotation(v, port)[0]

    def neighbors(self, v: Vertex) -> List[Vertex]:
        """Neighbors of ``v`` listed in port order (repeats for multi-edges)."""
        return [self.rotation(v, port)[0] for port in range(self.degree(v))]

    def ports_to(self, v: Vertex, w: Vertex) -> List[Port]:
        """All ports of ``v`` whose edge leads to ``w`` (may be empty)."""
        return [port for port in range(self.degree(v)) if self.rotation(v, port)[0] == w]

    def port_to(self, v: Vertex, w: Vertex) -> Port:
        """First port of ``v`` leading to ``w``.

        Raises
        ------
        GraphStructureError
            If ``v`` and ``w`` are not adjacent.
        """
        ports = self.ports_to(v, w)
        if not ports:
            raise GraphStructureError(f"vertices {v!r} and {w!r} are not adjacent")
        return ports[0]

    def has_edge(self, v: Vertex, w: Vertex) -> bool:
        """Return ``True`` when at least one edge joins ``v`` and ``w``."""
        if not self.has_vertex(v) or not self.has_vertex(w):
            return False
        return bool(self.ports_to(v, w))

    def edges(self) -> Iterator[PortEdge]:
        """Iterate over undirected edges, each reported once."""
        seen = set()
        for (v, i), (w, j) in self._rotation.items():
            edge = PortEdge(v, i, w, j)
            key = edge.key()
            if key in seen:
                continue
            seen.add(key)
            yield edge

    def rotation_map(self) -> Dict[HalfEdge, HalfEdge]:
        """Return a copy of the underlying rotation map."""
        return dict(self._rotation)

    # ------------------------------------------------------------------ #
    # Structural predicates
    # ------------------------------------------------------------------ #

    def is_regular(self, degree: Optional[int] = None) -> bool:
        """Return ``True`` when every vertex has the same degree.

        When ``degree`` is given the common degree must also equal it.
        """
        if not self._degrees:
            return True
        degrees = set(self._degrees.values())
        if len(degrees) != 1:
            return False
        return degree is None or degrees == {degree}

    def require_regular(self, degree: Optional[int] = None) -> int:
        """Return the common degree, raising :class:`NotRegularError` otherwise."""
        if not self.is_regular(degree):
            raise NotRegularError(
                f"graph is not {'regular' if degree is None else f'{degree}-regular'}",
                expected_degree=degree,
            )
        return self._degrees[self._vertices[0]] if self._vertices else 0

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for the empty graph)."""
        return max(self._degrees.values(), default=0)

    def min_degree(self) -> int:
        """Minimum vertex degree (0 for the empty graph)."""
        return min(self._degrees.values(), default=0)

    def self_loop_count(self) -> int:
        """Number of self-loop edges (half-loops and two-port loops alike)."""
        return sum(1 for edge in self.edges() if edge.is_self_loop)

    def parallel_edge_count(self) -> int:
        """Number of edges in excess of one between some pair of distinct vertices."""
        from collections import Counter

        pair_counts: Counter = Counter()
        for edge in self.edges():
            if not edge.is_self_loop:
                pair_counts[frozenset((edge.u, edge.v))] += 1
        return sum(count - 1 for count in pair_counts.values() if count > 1)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #

    def relabel(self, mapping: Mapping[Vertex, Vertex]) -> "LabeledGraph":
        """Return a copy with vertices renamed through ``mapping``.

        The mapping must be injective on the vertex set; vertices missing
        from the mapping keep their name.
        """
        new_names = {v: mapping.get(v, v) for v in self._vertices}
        if len(set(new_names.values())) != len(new_names):
            raise GraphStructureError("relabeling is not injective")
        rotation = {
            (new_names[v], i): (new_names[w], j)
            for (v, i), (w, j) in self._rotation.items()
        }
        isolated = [new_names[v] for v in self._vertices if self._degrees[v] == 0]
        return LabeledGraph(rotation, isolated_vertices=isolated)

    def with_contiguous_vertices(self) -> Tuple["LabeledGraph", Dict[Vertex, Vertex]]:
        """Relabel vertices to ``0..n-1`` and return the graph plus the mapping."""
        mapping = {v: index for index, v in enumerate(self._vertices)}
        return self.relabel(mapping), mapping

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "LabeledGraph":
        """Return the subgraph induced on ``vertices`` with ports re-packed.

        Edges leaving the vertex set are dropped; remaining ports of every
        vertex are renumbered to stay contiguous, preserving relative order.
        """
        keep = set(vertices)
        unknown = keep - set(self._vertices)
        if unknown:
            raise GraphStructureError(f"unknown vertices {sorted(unknown)!r}")
        # Surviving half-edges per vertex, in port order.
        surviving: Dict[Vertex, List[Port]] = {v: [] for v in keep}
        for v in keep:
            for port in range(self.degree(v)):
                w, _ = self.rotation(v, port)
                if w in keep:
                    surviving[v].append(port)
        new_port: Dict[HalfEdge, Port] = {}
        for v, ports in surviving.items():
            for new_index, old_port in enumerate(ports):
                new_port[(v, old_port)] = new_index
        rotation: Dict[HalfEdge, HalfEdge] = {}
        for v, ports in surviving.items():
            for old_port in ports:
                w, j = self.rotation(v, old_port)
                rotation[(v, new_port[(v, old_port)])] = (w, new_port[(w, j)])
        isolated = [v for v in keep if not surviving[v]]
        return LabeledGraph(rotation, isolated_vertices=isolated)

    def with_relabeled_ports(self, rng: object) -> "LabeledGraph":
        """Return a copy where every vertex's ports are permuted at random.

        This realises the paper's "for any labeling" quantifier: the edge set
        is unchanged, only the local labels move.  ``rng`` must provide a
        ``shuffle`` method (e.g. :class:`random.Random`).
        """
        permutation: Dict[HalfEdge, Port] = {}
        for v in self._vertices:
            ports = list(range(self.degree(v)))
            rng.shuffle(ports)  # type: ignore[attr-defined]
            for old, new in zip(range(self.degree(v)), ports):
                permutation[(v, old)] = new
        rotation = {
            (v, permutation[(v, i)]): (w, permutation[(w, j)])
            for (v, i), (w, j) in self._rotation.items()
        }
        isolated = [v for v in self._vertices if self._degrees[v] == 0]
        return LabeledGraph(rotation, isolated_vertices=isolated)

    def to_networkx(self) -> object:
        """Convert to a :class:`networkx.MultiGraph` (ports stored as edge data)."""
        import networkx as nx

        graph = nx.MultiGraph()
        graph.add_nodes_from(self._vertices)
        for edge in self.edges():
            graph.add_edge(edge.u, edge.v, u_port=edge.u_port, v_port=edge.v_port)
        return graph

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #

    def __contains__(self, v: object) -> bool:
        return v in self._degrees

    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledGraph):
            return NotImplemented
        return self._rotation == other._rotation

    def __hash__(self) -> int:
        return hash(frozenset(self._rotation.items()))

    def __repr__(self) -> str:
        return (
            f"LabeledGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, "
            f"degrees={sorted(set(self._degrees.values()))})"
        )
