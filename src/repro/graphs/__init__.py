"""Port-labeled graph substrate.

This subpackage implements the graph model of the paper (Section 2): undirected
multigraphs in which every vertex assigns local *port labels*
``0..deg(v) - 1`` to its incident edge endpoints.  The labels at the two
endpoints of an edge are independent, exactly as in the paper ("The labels of
an edge (u, v) from the viewpoint of u and v do not necessarily have to
match").

The central data structure is :class:`~repro.graphs.labeled_graph.LabeledGraph`,
a rotation-map representation that supports multi-edges and self-loops, which
the degree-reduction gadget of Fig. 1 and the zig-zag machinery of
:mod:`repro.expander` both require.
"""

from repro.graphs.labeled_graph import LabeledGraph, PortEdge
from repro.graphs.degree_reduction import DegreeReducedGraph, reduce_to_three_regular
from repro.graphs.connectivity import (
    connected_component,
    connected_components,
    is_connected,
    shortest_path_lengths,
)
from repro.graphs import generators
from repro.graphs.properties import (
    degree_histogram,
    diameter,
    graph_summary,
    is_simple,
    spectral_gap,
)

__all__ = [
    "LabeledGraph",
    "PortEdge",
    "DegreeReducedGraph",
    "reduce_to_three_regular",
    "connected_component",
    "connected_components",
    "is_connected",
    "shortest_path_lengths",
    "generators",
    "degree_histogram",
    "diameter",
    "graph_summary",
    "is_simple",
    "spectral_gap",
]
