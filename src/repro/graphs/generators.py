"""Topology generators used throughout the test-suite and experiments.

The paper makes claims over *all* static topologies, so the experiment harness
exercises a broad family of graphs:

* classic structured topologies (paths, rings, grids, tori, trees, hypercubes,
  complete graphs, prisms/Möbius–Kantor ladders which are natively 3-regular),
* adversarial random-walk topologies (lollipops, barbells),
* random models (Erdős–Rényi, random regular), and
* geometric ad hoc deployments (unit-disk graphs in 2D and 3D) which live in
  :mod:`repro.geometry` and are re-exported here for convenience.

Every generator returns a :class:`~repro.graphs.labeled_graph.LabeledGraph`
with a deterministic port labeling, so experiments are reproducible for a
fixed seed.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import GraphStructureError
from repro.graphs.labeled_graph import LabeledGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_graph",
    "star_graph",
    "grid_graph",
    "torus_graph",
    "binary_tree",
    "hypercube_graph",
    "prism_graph",
    "moebius_kantor_graph",
    "petersen_graph",
    "lollipop_graph",
    "barbell_graph",
    "cycle_with_chords",
    "circulant_graph",
    "random_regular_graph",
    "erdos_renyi_graph",
    "disjoint_union",
    "random_tree",
]


def _edges_to_graph(
    edges: Iterable[Tuple[int, int]],
    vertices: Optional[Iterable[int]] = None,
    seed: Optional[int] = None,
) -> LabeledGraph:
    """Build a labeled graph; when ``seed`` is given the ports are shuffled."""
    rng = random.Random(seed) if seed is not None else None
    return LabeledGraph.from_edges(edges, vertices=vertices, shuffle_ports=rng)


def path_graph(n: int) -> LabeledGraph:
    """Path on ``n >= 1`` vertices ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise GraphStructureError("path_graph requires n >= 1")
    return _edges_to_graph([(i, i + 1) for i in range(n - 1)], vertices=range(n))


def cycle_graph(n: int) -> LabeledGraph:
    """Cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise GraphStructureError("cycle_graph requires n >= 3")
    return _edges_to_graph([(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> LabeledGraph:
    """Complete graph ``K_n`` on ``n >= 1`` vertices."""
    if n < 1:
        raise GraphStructureError("complete_graph requires n >= 1")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return _edges_to_graph(edges, vertices=range(n))


def star_graph(n_leaves: int) -> LabeledGraph:
    """Star with centre ``0`` and ``n_leaves >= 1`` leaves ``1..n_leaves``.

    Stars maximise the degree spread, which makes them a useful stress test
    for the Fig. 1 degree-reduction gadget.
    """
    if n_leaves < 1:
        raise GraphStructureError("star_graph requires at least one leaf")
    return _edges_to_graph([(0, leaf) for leaf in range(1, n_leaves + 1)])


def grid_graph(rows: int, cols: int) -> LabeledGraph:
    """``rows x cols`` 2-dimensional grid (4-neighbourhood)."""
    if rows < 1 or cols < 1:
        raise GraphStructureError("grid_graph requires positive dimensions")

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vertex(r, c), vertex(r, c + 1)))
            if r + 1 < rows:
                edges.append((vertex(r, c), vertex(r + 1, c)))
    return _edges_to_graph(edges, vertices=range(rows * cols))


def torus_graph(rows: int, cols: int) -> LabeledGraph:
    """``rows x cols`` torus (grid with wrap-around edges), 4-regular for dims >= 3."""
    if rows < 3 or cols < 3:
        raise GraphStructureError("torus_graph requires both dimensions >= 3")

    def vertex(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            edges.append((vertex(r, c), vertex(r, (c + 1) % cols)))
            edges.append((vertex(r, c), vertex((r + 1) % rows, c)))
    return _edges_to_graph(edges)


def binary_tree(depth: int) -> LabeledGraph:
    """Complete binary tree of the given depth (depth 0 is a single root)."""
    if depth < 0:
        raise GraphStructureError("binary_tree requires depth >= 0")
    n = 2 ** (depth + 1) - 1
    edges = [((child - 1) // 2, child) for child in range(1, n)]
    return _edges_to_graph(edges, vertices=range(n))


def hypercube_graph(dimension: int) -> LabeledGraph:
    """Boolean hypercube of the given dimension (``2**dimension`` vertices)."""
    if dimension < 1:
        raise GraphStructureError("hypercube_graph requires dimension >= 1")
    n = 2 ** dimension
    edges = [(v, v ^ (1 << bit)) for v in range(n) for bit in range(dimension) if v < v ^ (1 << bit)]
    return _edges_to_graph(edges)


def prism_graph(n: int) -> LabeledGraph:
    """Circular ladder (prism) ``Y_n``: two n-cycles joined by rungs, 3-regular.

    Prisms are the work-horse natively-3-regular topology in the tests: the
    exploration-sequence machinery applies to them without degree reduction.
    """
    if n < 3:
        raise GraphStructureError("prism_graph requires n >= 3")
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        edges.append((i, (i + 1) % n))             # outer cycle
        edges.append((n + i, n + (i + 1) % n))     # inner cycle
        edges.append((i, n + i))                   # rung
    return _edges_to_graph(edges)


def moebius_kantor_graph() -> LabeledGraph:
    """The Möbius–Kantor graph: 16 vertices, 3-regular, girth 6."""
    outer = [(i, (i + 1) % 8) for i in range(8)]
    inner = [(8 + i, 8 + (i + 3) % 8) for i in range(8)]
    spokes = [(i, 8 + i) for i in range(8)]
    return _edges_to_graph(outer + inner + spokes)


def petersen_graph() -> LabeledGraph:
    """The Petersen graph: 10 vertices, 3-regular, a classic expander-ish graph."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return _edges_to_graph(outer + inner + spokes)


def lollipop_graph(clique_size: int, path_length: int) -> LabeledGraph:
    """Clique ``K_m`` with a path of ``path_length`` vertices attached.

    The lollipop maximises random-walk hitting times (Theta(n^3)), which makes
    it the adversarial instance for the random-walk routing baseline and a
    good showcase for the deterministic exploration sequence.
    """
    if clique_size < 3 or path_length < 1:
        raise GraphStructureError("lollipop_graph requires clique >= 3 and path >= 1")
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    previous = clique_size - 1
    for k in range(path_length):
        vertex = clique_size + k
        edges.append((previous, vertex))
        previous = vertex
    return _edges_to_graph(edges)


def barbell_graph(clique_size: int, path_length: int) -> LabeledGraph:
    """Two cliques of ``clique_size`` joined by a path of ``path_length`` vertices."""
    if clique_size < 3 or path_length < 0:
        raise GraphStructureError("barbell_graph requires clique >= 3 and path >= 0")
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    offset = clique_size + path_length
    edges += [(offset + i, offset + j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    chain = [clique_size - 1] + [clique_size + k for k in range(path_length)] + [offset]
    edges += [(chain[k], chain[k + 1]) for k in range(len(chain) - 1)]
    return _edges_to_graph(edges)


def cycle_with_chords(n: int, chord_step: int, seed: Optional[int] = None) -> LabeledGraph:
    """Cycle on ``n`` vertices plus chords ``(i, i + chord_step)`` for even ``i``.

    For ``chord_step`` around ``n // 2`` this produces 3-regular-ish graphs
    with small diameter; used as an alternative 3-regular family in tests.
    """
    if n < 4 or chord_step < 2 or chord_step >= n:
        raise GraphStructureError("cycle_with_chords requires n >= 4 and 2 <= chord_step < n")
    edges = [(i, (i + 1) % n) for i in range(n)]
    seen = set()
    for i in range(0, n, 2):
        j = (i + chord_step) % n
        key = frozenset((i, j))
        if i != j and key not in seen:
            seen.add(key)
            edges.append((i, j))
    return _edges_to_graph(edges, seed=seed)


def circulant_graph(n: int, offsets: Tuple[int, ...] = (1, 2)) -> LabeledGraph:
    """Circulant graph: vertex ``i`` joins ``i ± o (mod n)`` for every offset ``o``.

    With the default offsets ``(1, 2)`` the graph is 4-regular, connected and
    non-bipartite (it contains triangles) for every ``n >= 5`` — properties the
    zig-zag machinery needs from its base graphs.
    """
    if n < 3:
        raise GraphStructureError("circulant_graph requires n >= 3")
    if not offsets or any(o < 1 or o >= n for o in offsets):
        raise GraphStructureError("offsets must be in the range 1..n-1")
    if len(set(offsets)) != len(offsets):
        raise GraphStructureError("offsets must be distinct")
    edges = []
    seen = set()
    for i in range(n):
        for offset in offsets:
            j = (i + offset) % n
            key = (min(i, j), max(i, j), offset)
            if key not in seen:
                seen.add(key)
                edges.append((i, j))
    return _edges_to_graph(edges)


def random_regular_graph(n: int, degree: int, seed: int = 0) -> LabeledGraph:
    """Random ``degree``-regular simple graph on ``n`` vertices.

    Uses :func:`networkx.random_regular_graph` (configuration-model based)
    with a fixed seed for reproducibility.  ``n * degree`` must be even.
    """
    import networkx as nx

    if n * degree % 2 != 0:
        raise GraphStructureError("random_regular_graph requires n * degree to be even")
    if degree >= n:
        raise GraphStructureError("random_regular_graph requires degree < n")
    nx_graph = nx.random_regular_graph(degree, n, seed=seed)
    return LabeledGraph.from_networkx(nx_graph)


def erdos_renyi_graph(n: int, edge_probability: float, seed: int = 0) -> LabeledGraph:
    """Erdős–Rényi ``G(n, p)`` graph with a deterministic seed."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphStructureError("edge_probability must lie in [0, 1]")
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return _edges_to_graph(edges, vertices=range(n))


def random_tree(n: int, seed: int = 0) -> LabeledGraph:
    """Uniform-ish random tree on ``n`` vertices built by random attachment."""
    if n < 1:
        raise GraphStructureError("random_tree requires n >= 1")
    rng = random.Random(seed)
    edges = [(rng.randrange(v), v) for v in range(1, n)]
    return _edges_to_graph(edges, vertices=range(n))


def disjoint_union(graphs: Sequence[LabeledGraph]) -> LabeledGraph:
    """Disjoint union of several graphs with vertices relabeled to be distinct.

    The result is the canonical way to construct *disconnected* instances for
    the failure-detection experiments (E9): route from one component to a
    vertex of another and observe the guaranteed "failure" confirmation.
    """
    rotation = {}
    isolated: List[int] = []
    offset = 0
    for graph in graphs:
        contiguous, _ = graph.with_contiguous_vertices()
        for (v, i), (w, j) in contiguous.rotation_map().items():
            rotation[(v + offset, i)] = (w + offset, j)
        for v in contiguous.vertices:
            if contiguous.degree(v) == 0:
                isolated.append(v + offset)
        offset += contiguous.num_vertices
    return LabeledGraph(rotation, isolated_vertices=isolated)
