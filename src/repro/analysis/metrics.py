"""Routing metrics: delivery, hop counts, stretch, state and overhead.

A :class:`RoutingObservation` is the common denominator of everything the
experiments compare: the guaranteed router (:class:`~repro.core.routing.RouteResult`),
the baselines (:class:`~repro.baselines.base.RoutingAttempt`) and the hybrid
combiner all convert into one, after which delivery rates, stretch and cost
statistics are computed uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.baselines.base import RoutingAttempt
from repro.core.routing import RouteOutcome, RouteResult
from repro.graphs.connectivity import shortest_path
from repro.graphs.labeled_graph import LabeledGraph

__all__ = [
    "RoutingObservation",
    "observation_from_route",
    "observation_from_attempt",
    "delivery_rate",
    "failure_detection_rate",
    "stretch",
    "mean_hops",
]


@dataclass(frozen=True)
class RoutingObservation:
    """One routing attempt, normalised across algorithms."""

    algorithm: str
    source: int
    target: int
    reachable: bool
    delivered: bool
    outcome_known: bool
    hops: int
    shortest_path_hops: Optional[int]
    header_bits: int = 0
    per_node_state_bits: int = 0

    @property
    def correct(self) -> bool:
        """Delivered exactly when the target was reachable, and the outcome is known."""
        if not self.outcome_known:
            return False
        return self.delivered == self.reachable

    @property
    def stretch(self) -> Optional[float]:
        """Hops divided by the shortest-path distance (when delivered and defined)."""
        if not self.delivered or not self.shortest_path_hops:
            return None
        return self.hops / self.shortest_path_hops


def _shortest_hops(graph: LabeledGraph, source: int, target: int) -> Optional[int]:
    if not graph.has_vertex(target) or not graph.has_vertex(source):
        return None
    path = shortest_path(graph, source, target)
    return None if path is None else len(path) - 1


def observation_from_route(
    graph: LabeledGraph, result: RouteResult
) -> RoutingObservation:
    """Normalise a guaranteed-router result."""
    shortest = _shortest_hops(graph, result.source, result.target)
    return RoutingObservation(
        algorithm="ues-route",
        source=result.source,
        target=result.target,
        reachable=shortest is not None,
        delivered=result.delivered,
        outcome_known=True,
        hops=result.physical_hops,
        shortest_path_hops=shortest,
        header_bits=result.header_bits,
        per_node_state_bits=0,
    )


def observation_from_attempt(
    graph: LabeledGraph, source: int, target: int, attempt: RoutingAttempt
) -> RoutingObservation:
    """Normalise a baseline attempt."""
    shortest = _shortest_hops(graph, source, target)
    outcome_known = attempt.delivered or attempt.detected_failure
    return RoutingObservation(
        algorithm=attempt.algorithm,
        source=source,
        target=target,
        reachable=shortest is not None,
        delivered=attempt.delivered,
        outcome_known=outcome_known,
        hops=attempt.hops,
        shortest_path_hops=shortest,
        header_bits=0,
        per_node_state_bits=attempt.per_node_state_bits,
    )


def delivery_rate(observations: Sequence[RoutingObservation]) -> float:
    """Fraction of attempts with a reachable target that were delivered."""
    eligible = [obs for obs in observations if obs.reachable]
    if not eligible:
        return 1.0
    return sum(1 for obs in eligible if obs.delivered) / len(eligible)


def failure_detection_rate(observations: Sequence[RoutingObservation]) -> float:
    """Fraction of attempts with an unreachable target whose failure was detected."""
    eligible = [obs for obs in observations if not obs.reachable]
    if not eligible:
        return 1.0
    return sum(1 for obs in eligible if obs.outcome_known and not obs.delivered) / len(eligible)


def mean_hops(observations: Sequence[RoutingObservation], delivered_only: bool = True) -> Optional[float]:
    """Mean hop count (of delivered attempts by default)."""
    pool = [obs.hops for obs in observations if obs.delivered or not delivered_only]
    if not pool:
        return None
    return sum(pool) / len(pool)


def stretch(observations: Sequence[RoutingObservation]) -> Optional[float]:
    """Mean stretch over the delivered attempts for which it is defined."""
    values = [obs.stretch for obs in observations if obs.stretch is not None]
    if not values:
        return None
    return sum(values) / len(values)
