"""Analysis and experiment-harness utilities.

The modules here turn raw algorithm outputs (route results, baseline
attempts, simulation traces) into the summary rows the benchmark harness
prints for each experiment of EXPERIMENTS.md: delivery rates, hop counts,
stretch against the shortest path, header overhead and memory usage, with
basic statistics over repeated trials and a plain-text table renderer.
"""

from repro.analysis.metrics import (
    RoutingObservation,
    delivery_rate,
    observation_from_attempt,
    observation_from_route,
    stretch,
)
from repro.analysis.statistics import SummaryStats, summarize
from repro.analysis.reporting import format_table, format_markdown_table
from repro.analysis.experiments import (
    ExperimentResult,
    ScenarioSpec,
    build_scenario,
    build_schedule,
    dynamic_schedule_scenarios,
    run_parameter_sweep,
    structured_scenarios,
    unit_disk_scenarios,
)
from repro.analysis.conformance import (
    ConformanceReport,
    ConformanceViolation,
    default_conformance_matrix,
    run_conformance,
)

__all__ = [
    "RoutingObservation",
    "delivery_rate",
    "observation_from_attempt",
    "observation_from_route",
    "stretch",
    "SummaryStats",
    "summarize",
    "format_table",
    "format_markdown_table",
    "ExperimentResult",
    "ScenarioSpec",
    "build_scenario",
    "build_schedule",
    "dynamic_schedule_scenarios",
    "run_parameter_sweep",
    "structured_scenarios",
    "unit_disk_scenarios",
    "ConformanceReport",
    "ConformanceViolation",
    "default_conformance_matrix",
    "run_conformance",
]
