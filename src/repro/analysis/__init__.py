"""Analysis and experiment-harness utilities.

The modules here turn raw algorithm outputs (route results, baseline
attempts, simulation traces) into summary rows for the benchmark and report
tables: delivery rates, hop counts, stretch against the shortest path,
header overhead and memory usage, with basic statistics over repeated
trials and a plain-text table renderer.  On top of that sit the scenario
harness (:mod:`repro.analysis.experiments`), the sharded parallel sweep
orchestrator (:mod:`repro.analysis.runner`) and the differential
conformance suite (:mod:`repro.analysis.conformance`).
"""

from repro.analysis.metrics import (
    RoutingObservation,
    delivery_rate,
    observation_from_attempt,
    observation_from_route,
    stretch,
)
from repro.analysis.statistics import SummaryStats, summarize
from repro.analysis.reporting import format_table, format_markdown_table
from repro.analysis.experiments import (
    ExperimentResult,
    ExperimentTable,
    ScenarioSpec,
    build_scenario,
    build_schedule,
    dynamic_schedule_scenarios,
    is_dynamic_scenario,
    is_streamed_scenario,
    reference_run_parameter_sweep,
    run_parameter_sweep,
    structured_scenarios,
    unit_disk_scenarios,
)
from repro.analysis.runner import (
    SweepOutcome,
    SweepPlan,
    SweepShard,
    evaluate_shard,
    plan_sweep,
    run_sweep,
    shard_seed,
)
from repro.analysis.conformance import (
    ConformanceReport,
    ConformanceViolation,
    conformance_pass,
    default_conformance_matrix,
    is_malicious_scenario,
    malicious_broadcast_scenarios,
    run_conformance,
)

__all__ = [
    "RoutingObservation",
    "delivery_rate",
    "observation_from_attempt",
    "observation_from_route",
    "stretch",
    "SummaryStats",
    "summarize",
    "format_table",
    "format_markdown_table",
    "ExperimentResult",
    "ExperimentTable",
    "ScenarioSpec",
    "build_scenario",
    "build_schedule",
    "dynamic_schedule_scenarios",
    "is_dynamic_scenario",
    "is_streamed_scenario",
    "reference_run_parameter_sweep",
    "run_parameter_sweep",
    "structured_scenarios",
    "unit_disk_scenarios",
    "SweepOutcome",
    "SweepPlan",
    "SweepShard",
    "evaluate_shard",
    "plan_sweep",
    "run_sweep",
    "shard_seed",
    "ConformanceReport",
    "ConformanceViolation",
    "conformance_pass",
    "default_conformance_matrix",
    "is_malicious_scenario",
    "malicious_broadcast_scenarios",
    "run_conformance",
]
