"""Plain-text and Markdown table rendering for experiment output.

Every consumer of an :class:`~repro.analysis.experiments.ExperimentResult`
renders through these helpers: the benchmark modules (which persist their
reproduction tables under ``benchmarks/output/``), the CLI subcommands, the
conformance report, and the sweep orchestrator's aggregated tables — so the
console output stays visually consistent everywhere.  Rendering is pure
formatting: a table renders identically whether its rows came from the
serial reference sweep or were aggregated from a parallel run's JSONL
stream.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_cell", "format_table", "format_markdown_table"]


def format_cell(value: object, precision: int = 3) -> str:
    """Render one table cell: floats rounded, ``None`` as a dash, rest via str."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def _render_rows(
    headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int
) -> List[List[str]]:
    rendered = [[format_cell(cell, precision) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table declares {len(headers)} columns"
            )
    return rendered


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned fixed-width text table."""
    rendered = _render_rows(headers, rows, precision)
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered)) if rendered else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render a GitHub-flavoured Markdown table (used to update EXPERIMENTS.md)."""
    rendered = _render_rows(headers, rows, precision)
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
