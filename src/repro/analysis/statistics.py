"""Small summary-statistics helpers for experiment reporting.

Nothing here is novel: means, medians, standard deviations and normal-
approximation confidence intervals over repeated trials, packaged so every
benchmark prints its numbers the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["SummaryStats", "summarize", "ratio_of_means", "geometric_mean"]


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample of real numbers."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        if self.count <= 1:
            return (self.mean, self.mean)
        half_width = z * self.std / math.sqrt(self.count)
        return (self.mean - half_width, self.mean + half_width)

    def format(self, precision: int = 2) -> str:
        """Compact ``mean ± std`` rendering for tables."""
        return f"{self.mean:.{precision}f} ± {self.std:.{precision}f}"


def summarize(values: Iterable[float]) -> SummaryStats:
    """Summarise a non-empty sample.

    Raises
    ------
    ValueError
        If the sample is empty (callers should report "no data" explicitly
        rather than rely on sentinel statistics).
    """
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    count = len(data)
    mean = sum(data) / count
    if count % 2:
        median = data[count // 2]
    else:
        median = (data[count // 2 - 1] + data[count // 2]) / 2
    variance = sum((v - mean) ** 2 for v in data) / (count - 1) if count > 1 else 0.0
    return SummaryStats(
        count=count,
        mean=mean,
        median=median,
        std=math.sqrt(variance),
        minimum=data[0],
        maximum=data[-1],
    )


def ratio_of_means(numerators: Sequence[float], denominators: Sequence[float]) -> Optional[float]:
    """Ratio of the two sample means (``None`` when undefined).

    Used for "algorithm A costs X times algorithm B" rows in the benchmark
    output; the ratio of means is preferred over the mean of ratios because it
    weights longer routes proportionally.
    """
    if not numerators or not denominators:
        return None
    denominator_mean = sum(denominators) / len(denominators)
    if denominator_mean == 0:
        return None
    return (sum(numerators) / len(numerators)) / denominator_mean


def geometric_mean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean of strictly positive values (``None`` when undefined)."""
    if not values or any(v <= 0 for v in values):
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))
