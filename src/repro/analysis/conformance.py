"""Differential conformance harness across every router in the repository.

**Paper vs. extension.**  The paper proves one algorithm correct; this module
is reproduction infrastructure.  It runs the *same* source/target pairs
through every implementation the repository ships — the prepared engine
(:mod:`repro.core.engine`), the seed walkers (:func:`repro.core.routing.route`
and the fully distributed :func:`repro.core.routing.route_on_network`), the
schedule-aware engine of the dynamic-topology extension, and every baseline
router registered in :data:`repro.baselines.ALL_ROUTER_SPECS` — over a matrix
of :class:`~repro.analysis.experiments.ScenarioSpec` instances (unit-disk 2D
and 3D, structured topologies, deliberately disconnected networks, and
dynamic topology schedules), and asserts the cross-implementation invariants
in one table-driven pass:

* the guaranteed router succeeds **iff** source and target are connected
  (Theorem 1), and its centralised, prepared and distributed realisations
  agree on outcome and step accounting;
* no router ever delivers across components ("no false delivery");
* routers whose contract guarantees delivery/detection (flooding, DFS token)
  honour it, while weaker flags (greedy's local-minimum detection) are not
  over-trusted;
* the schedule-aware engine agrees with the reference schedule walker
  result-for-result, degenerates to static routing on static schedules, and
  labels the soundness of every dynamic verdict correctly;
* the unified task API (:mod:`repro.api`) reproduces the engine exactly when
  routing the same pair through a :class:`~repro.api.session.Session`-built
  scenario — status, payload and step accounting (the ``api-parity``
  invariant, checked on the default-provider path for both static and
  dynamic scenarios);
* the lockstep batched walk kernel (:mod:`repro.core.batch_kernel`) matches
  the scalar walks element for element when the same pairs are routed as one
  batch through ``route_many(lockstep=True)``, on static networks and on
  schedules alike (the ``batch-parity`` invariant);
* the Bracha reliable-broadcast layer (:mod:`repro.core.reliable_broadcast`)
  keeps its correctness conditions on the *malicious-node scenario axis*
  (:func:`malicious_broadcast_scenarios`): for every generated configuration
  with ``f < N/3`` Byzantine nodes — each behaviour in
  :data:`~repro.network.byzantine.BYZANTINE_BEHAVIORS` alone, a mixed pool,
  and a crash-composed variant — honest nodes never deliver two different
  values (``rb-agreement``), deliver all-or-none (``rb-totality``), and only
  deliver values the source actually emitted (``rb-no-false-delivery``);
  additionally an honest source always reaches everyone (``rb-validity``),
  equivocation evidence only ever accuses genuinely Byzantine nodes
  (``rb-evidence-attributable``), and resolving the Byzantine plan and the
  crash plan in either order yields identical runs
  (``rb-fault-composition``).

The harness is what the roadmap's "validate round-based models against their
synchronous idealisation" advice looks like in code: one place where every
implementation is confronted with every scenario family, so a divergence
introduced by an optimisation shows up as a named invariant violation rather
than a silently different benchmark number.

Scenarios are independent of each other, so :func:`conformance_pass` can shard
them across worker processes (``workers > 1``) through the same pool helper
the sweep orchestrator uses (:func:`repro.analysis.runner.parallel_map`);
per-scenario fragments are merged in scenario order, so the report is
identical to a serial run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.experiments import (
    DYNAMIC_FAMILIES,
    ScenarioSpec,
    build_scenario,
    build_schedule,
    dynamic_schedule_scenarios,
    is_dynamic_scenario,
    is_streamed_scenario,
    pick_source_target_pairs,
)
from repro.analysis.runner import parallel_map
from repro.analysis.reporting import format_table
from repro.baselines import applicable_routers
from repro.deprecation import warn_once
from repro.core.engine import prepare, prepare_schedule
from repro.core.reliable_broadcast import (
    QuorumThresholds,
    UESTransport,
    broadcast_reliably,
)
from repro.core.routing import RouteOutcome, route, route_on_network
from repro.core.universal import SequenceProvider
from repro.graphs.connectivity import are_connected, connected_component, is_connected
from repro.network.byzantine import BYZANTINE_BEHAVIORS, ByzantinePlan, FaultModel
from repro.network.dynamics import (
    DynamicOutcome,
    reference_route_over_schedule,
)
from repro.network.failures import FailurePlan

__all__ = [
    "ConformanceViolation",
    "ConformanceReport",
    "default_conformance_matrix",
    "is_malicious_scenario",
    "malicious_broadcast_scenarios",
    "conformance_pass",
    "run_conformance",
]

#: Skip the (slow, per-event bit-accounted) distributed realisation when the
#: exploration sequence is longer than this; the walkers are still compared.
_DISTRIBUTED_LENGTH_CAP = 30_000

#: Columns of the per-(scenario, router) summary table.
_REPORT_HEADERS = ("scenario", "router", "pairs", "delivered", "detected", "violations")


@dataclass(frozen=True)
class ConformanceViolation:
    """One failed invariant: which scenario, router, pair and rule."""

    scenario: str
    router: str
    source: int
    target: int
    invariant: str
    detail: str = ""


@dataclass
class ConformanceReport:
    """Outcome of one conformance pass: summary rows plus every violation."""

    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    violations: List[ConformanceViolation] = field(default_factory=list)
    checks: int = 0

    @property
    def ok(self) -> bool:
        """True when every invariant held on every scenario."""
        return not self.violations

    def table(self, title: str = "differential conformance") -> str:
        """The per-(scenario, router) summary as a rendered table."""
        return format_table(self.headers, self.rows, title=title)


def default_conformance_matrix() -> List[ScenarioSpec]:
    """The scenario matrix the conformance suite runs by default.

    Unit-disk deployments in 2D and 3D (position-based baselines apply),
    structured topologies spanning degree profiles (grid, ring, prism,
    random-regular, lollipop, tree), sparse Erdős–Rényi and the deliberately
    disconnected ``two-rings`` family (failure/confirmation paths), plus
    dynamic topology schedules for every supported mutation, and the
    :mod:`repro.scenarios` families: heterogeneous budgeted unit-disk
    (``hetero-degree-respected``), churn and mobility schedules
    (``churn-delivery-iff-connected``), and small streamed shard families
    (``streamed-parity`` against the materialised union).
    """
    scenarios: List[ScenarioSpec] = [
        ScenarioSpec(name="udg2d-n20", family="unit-disk", size=20, seed=0, radius=0.35),
        ScenarioSpec(name="udg2d-n20-s1", family="unit-disk", size=20, seed=1, radius=0.35),
        ScenarioSpec(
            name="udg3d-n16", family="unit-disk", size=16, seed=0, radius=0.5, dimension=3
        ),
        ScenarioSpec(name="grid-n16", family="grid", size=16, seed=0),
        ScenarioSpec(name="ring-n8", family="ring", size=8, seed=0),
        ScenarioSpec(name="prism-n10", family="prism", size=10, seed=0),
        ScenarioSpec(
            name="rr3-n12", family="random-regular", size=12, seed=1, extra=(("degree", 3),)
        ),
        ScenarioSpec(
            name="er-n14", family="erdos-renyi", size=14, seed=2, extra=(("p", 0.15),)
        ),
        ScenarioSpec(name="lollipop-n12", family="lollipop", size=12, seed=0),
        ScenarioSpec(name="tree-n14", family="tree", size=14, seed=3),
        ScenarioSpec(name="two-rings-n11", family="two-rings", size=11, seed=0),
    ]
    scenarios.extend(
        dynamic_schedule_scenarios(
            families=("grid", "ring"),
            sizes=(12,),
            seeds=(0,),
            snapshot_count=3,
            switch_every=5,
            mutations=("relabel", "drop-edge"),
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="dyn-static-grid-n12",
            family="grid",
            size=12,
            seed=0,
            extra=(("mutation", "static"), ("snapshots", 1), ("switch_every", 4)),
        )
    )
    # The repro.scenarios families: heterogeneous capability budgets (two
    # seeds), churn and mobility schedules (two churn seeds so the
    # churn-delivery-iff-connected invariant sees different traces), and
    # small streamed shard families checked against their materialised union.
    for hetero_seed in (0, 1):
        scenarios.append(
            ScenarioSpec(
                name=f"hetero-mixed-n24-s{hetero_seed}",
                family="hetero-unit-disk",
                size=24,
                seed=hetero_seed,
                radius=0.35,
                extra=(("profile", "mixed"),),
            )
        )
    for churn_seed in (0, 1):
        scenarios.append(
            ScenarioSpec(
                name=f"churn-mixed-n20-s{churn_seed}",
                family="churn",
                size=20,
                seed=churn_seed,
                radius=0.4,
                extra=(("profile", "mixed"), ("snapshots", 4), ("switch_every", 5)),
            )
        )
    scenarios.append(
        ScenarioSpec(
            name="mobility-mixed-n18",
            family="mobility",
            size=18,
            seed=0,
            radius=0.4,
            extra=(("profile", "mixed"), ("snapshots", 3), ("switch_every", 5)),
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="streamed-grid-n48",
            family="streamed-grid",
            size=48,
            seed=0,
            extra=(("shard_size", 16),),
        )
    )
    scenarios.append(
        ScenarioSpec(
            name="streamed-ud-n36",
            family="streamed-unit-disk",
            size=36,
            seed=0,
            radius=0.4,
            extra=(("shard_size", 12),),
        )
    )
    scenarios.extend(malicious_broadcast_scenarios())
    return scenarios


#: ``extra`` key that marks a spec as a malicious-broadcast scenario (its
#: value is the number of Byzantine nodes to corrupt).
_MALICIOUS_KEY = "byzantine"


def is_malicious_scenario(spec: ScenarioSpec) -> bool:
    """True when the spec describes a malicious-broadcast scenario.

    Such specs carry a ``("byzantine", f)`` entry in ``extra`` (plus
    ``behavior`` and optionally ``crashes``); the conformance harness checks
    them against the reliable-broadcast invariants instead of the routing
    ones.  A malicious spec is still a perfectly ordinary *static* spec to
    every other consumer of the matrix (sweeps, parity suites): the extra
    keys only change which invariants this harness applies.
    """
    return any(key == _MALICIOUS_KEY for key, _ in spec.extra)


def malicious_broadcast_scenarios(
    families: Sequence[Tuple[str, int]] = (("grid", 9), ("ring", 7)),
    behaviors: Sequence[str] = BYZANTINE_BEHAVIORS,
) -> List[ScenarioSpec]:
    """The malicious-node scenario axis of the conformance matrix.

    For every ``(family, size)`` and **every** Byzantine count ``f`` with
    ``f < N/3`` (``0 <= f <= f_tolerated``), one scenario per single
    behaviour plus one drawing from the mixed behaviour pool; on top, one
    composition scenario per family that combines a Byzantine plan with a
    crash-model :class:`~repro.network.failures.FailurePlan`, so the
    order-independence of :meth:`~repro.network.byzantine.FaultModel.resolve`
    is exercised inside the matrix and not only by unit tests.
    """
    scenarios: List[ScenarioSpec] = []
    for family, size in families:
        realised = build_scenario(
            ScenarioSpec(name="probe", family=family, size=size, seed=0)
        ).graph.num_vertices
        f_tolerated = QuorumThresholds.for_size(realised).f_tolerated
        for f in range(f_tolerated + 1):
            if f == 0:
                scenarios.append(
                    ScenarioSpec(
                        name=f"rb-{family}-n{size}-f0",
                        family=family,
                        size=size,
                        seed=0,
                        extra=((_MALICIOUS_KEY, 0),),
                    )
                )
                continue
            for behavior in tuple(behaviors) + ("mixed",):
                scenarios.append(
                    ScenarioSpec(
                        name=f"rb-{family}-n{size}-f{f}-{behavior}",
                        family=family,
                        size=size,
                        seed=0,
                        extra=((_MALICIOUS_KEY, f), ("behavior", behavior)),
                    )
                )
        if f_tolerated >= 2:
            # One Byzantine node plus one crashed node: both fault plans on
            # the same scenario, total faults still below the threshold.
            scenarios.append(
                ScenarioSpec(
                    name=f"rb-{family}-n{size}-compose",
                    family=family,
                    size=size,
                    seed=0,
                    extra=(
                        (_MALICIOUS_KEY, 1),
                        ("behavior", "equivocate"),
                        ("crashes", 1),
                    ),
                )
            )
    return scenarios


class _Tally:
    """Per-(scenario, router) counters feeding the report rows."""

    def __init__(self) -> None:
        self.pairs = 0
        self.delivered = 0
        self.detected = 0
        self.violations = 0


def _scenario_fragment(
    task: Tuple[ScenarioSpec, int, int, Optional[SequenceProvider]],
) -> ConformanceReport:
    """Check one scenario; return its report fragment (runs in any process)."""
    spec, pairs_per_scenario, seed, provider = task
    fragment = ConformanceReport(headers=list(_REPORT_HEADERS))
    if is_malicious_scenario(spec):
        _check_malicious_scenario(spec, pairs_per_scenario, seed, provider, fragment)
    elif is_dynamic_scenario(spec):
        _check_dynamic_scenario(spec, pairs_per_scenario, seed, provider, fragment)
    else:
        _check_static_scenario(spec, pairs_per_scenario, seed, provider, fragment)
    return fragment


def conformance_pass(
    scenarios: Optional[Sequence[ScenarioSpec]] = None,
    pairs_per_scenario: int = 4,
    seed: int = 0,
    provider: Optional[SequenceProvider] = None,
    workers: int = 1,
) -> ConformanceReport:
    """Run the differential conformance pass over ``scenarios``.

    Every scenario is materialised once; every pair is routed by every
    applicable implementation; every invariant violation is recorded with the
    scenario, router, pair and the rule it broke.  The returned report is
    table-renderable and ``report.ok`` is the single go/no-go flag the test
    suite asserts.

    ``workers > 1`` shards the scenarios over a process pool (each scenario
    checked exactly as on the serial path, in its own worker) and merges the
    fragments in scenario order — the report is identical to a serial run.
    A non-default ``provider`` must then be picklable *and* deterministic per
    bound: a provider that mutates cross-call state to vary its sequences
    would see that state reset in every worker and silently diverge from the
    serial report.

    This is the execution body of the ``conformance`` task
    (:class:`repro.api.ConformanceRequest`); the blessed entry point is
    ``Session.submit``.
    """
    specs = list(scenarios) if scenarios is not None else default_conformance_matrix()
    tasks = [(spec, pairs_per_scenario, seed, provider) for spec in specs]
    fragments = parallel_map(_scenario_fragment, tasks, workers)
    report = ConformanceReport(headers=list(_REPORT_HEADERS))
    for fragment in fragments:
        report.rows.extend(fragment.rows)
        report.violations.extend(fragment.violations)
        report.checks += fragment.checks
    return report


def run_conformance(
    scenarios: Optional[Sequence[ScenarioSpec]] = None,
    pairs_per_scenario: int = 4,
    seed: int = 0,
    provider: Optional[SequenceProvider] = None,
    workers: int = 1,
) -> ConformanceReport:
    """Deprecated alias of :func:`conformance_pass`.

    Kept for callers of the kwargs-style free function; new code should
    submit a :class:`repro.api.ConformanceRequest` through
    :class:`repro.api.Session` and read the uniform
    :class:`~repro.api.envelope.TaskResult` envelope instead.  Emits one
    :class:`DeprecationWarning` per process; results are bit-for-bit
    identical to the new path (asserted in ``tests/test_api_deprecation.py``).
    """
    warn_once(
        "conformance.run_conformance",
        "run_conformance(...) is deprecated; submit a "
        "repro.api.ConformanceRequest through repro.api.Session instead",
    )
    return conformance_pass(
        scenarios=scenarios,
        pairs_per_scenario=pairs_per_scenario,
        seed=seed,
        provider=provider,
        workers=workers,
    )


# --------------------------------------------------------------------------- #
# Static scenarios
# --------------------------------------------------------------------------- #


def _check_static_scenario(
    spec: ScenarioSpec,
    pairs_per_scenario: int,
    seed: int,
    provider: Optional[SequenceProvider],
    report: ConformanceReport,
) -> None:
    network = build_scenario(spec)
    graph = network.graph
    deployment = network.deployment
    dimension = deployment.dimension if deployment is not None else None
    engine = prepare(graph)
    pairs = pick_source_target_pairs(network, pairs_per_scenario, seed=seed)
    tallies: Dict[str, _Tally] = {}
    engine_results: List[object] = []

    # The unified task API must reproduce the engine exactly when it builds
    # the same spec itself.  Requests cannot carry a live provider object, so
    # the check only applies on the default-provider path.  Imported lazily:
    # repro.api sits above this module in the layer order.
    api_session = None
    if provider is None:
        from repro.api.executors import route_result_payload
        from repro.api.requests import RouteRequest
        from repro.api.session import Session

        api_session = Session()

    def fail(router: str, s: int, t: int, invariant: str, detail: str = "") -> None:
        report.violations.append(
            ConformanceViolation(spec.name, router, s, t, invariant, detail)
        )
        tallies.setdefault(router, _Tally()).violations += 1

    def check(router: str, s: int, t: int, invariant: str, ok: bool, detail: str = "") -> None:
        report.checks += 1
        if not ok:
            fail(router, s, t, invariant, detail)

    for s, t in pairs:
        truth = are_connected(graph, s, t)

        # --- the guaranteed router: three realisations, one behaviour ----- #
        engine_result = engine.route(s, t, provider=provider)
        engine_results.append(engine_result)
        tally = tallies.setdefault("ues-engine", _Tally())
        tally.pairs += 1
        tally.delivered += int(engine_result.delivered)
        tally.detected += int(engine_result.outcome is RouteOutcome.FAILURE)
        check(
            "ues-engine", s, t, "guaranteed-delivery",
            (engine_result.outcome is RouteOutcome.SUCCESS) == truth,
            f"outcome={engine_result.outcome.value} connected={truth}",
        )
        check(
            "ues-engine", s, t, "outcome-matches-delivery",
            engine_result.delivered == (engine_result.outcome is RouteOutcome.SUCCESS),
        )

        wrapper_result = route(graph, s, t, provider=provider)
        check(
            "ues-route", s, t, "wrapper-parity",
            wrapper_result == engine_result,
            f"route()={wrapper_result} engine={engine_result}",
        )
        traced_result, _trace = engine.route_with_trace(s, t, provider=provider)
        check(
            "ues-engine", s, t, "trace-parity",
            traced_result == engine_result,
            "route_with_trace diverged from route",
        )

        if api_session is not None:
            # The facade builds its own network from the same spec, so parity
            # here covers scenario construction, engine reuse and the payload
            # encoding in one invariant.
            api_result = api_session.submit(
                RouteRequest(scenario=spec, source=s, target=t)
            )
            expected = engine.route(s, t, namespace_size=network.namespace_size)
            tally = tallies.setdefault("ues-api", _Tally())
            tally.pairs += 1
            tally.delivered += int(api_result.payload["delivered"])
            tally.detected += int(api_result.status == RouteOutcome.FAILURE.value)
            check(
                "ues-api", s, t, "api-parity",
                api_result.status == expected.outcome.value
                and api_result.payload == route_result_payload(expected)
                and api_result.physical_steps == expected.physical_hops
                and api_result.virtual_steps == expected.total_virtual_steps,
                f"api={api_result.status}/{api_result.payload} "
                f"engine={expected.outcome.value}",
            )

        if engine_result.sequence_length <= _DISTRIBUTED_LENGTH_CAP:
            distributed = route_on_network(network, s, t, provider=provider)
            tally = tallies.setdefault("ues-distributed", _Tally())
            tally.pairs += 1
            tally.delivered += int(distributed.delivered)
            tally.detected += int(distributed.outcome is RouteOutcome.FAILURE)
            agree = (
                distributed.outcome is engine_result.outcome
                and distributed.delivered == engine_result.delivered
                and distributed.forward_virtual_steps == engine_result.forward_virtual_steps
                and distributed.backward_virtual_steps == engine_result.backward_virtual_steps
                and distributed.size_bound == engine_result.size_bound
            )
            check(
                "ues-distributed", s, t, "distributed-parity", agree,
                f"distributed={distributed.outcome.value}/"
                f"{distributed.forward_virtual_steps}+{distributed.backward_virtual_steps} "
                f"engine={engine_result.outcome.value}/"
                f"{engine_result.forward_virtual_steps}+{engine_result.backward_virtual_steps}",
            )

        # --- every applicable baseline, against its declared contract ----- #
        for router in applicable_routers(deployment, dimension):
            attempt = router.run(graph, deployment, s, t, seed)
            tally = tallies.setdefault(router.name, _Tally())
            tally.pairs += 1
            tally.delivered += int(attempt.delivered)
            tally.detected += int(attempt.detected_failure)
            check(
                router.name, s, t, "no-false-delivery",
                (not attempt.delivered) or truth,
                "delivered across components",
            )
            if router.guaranteed_delivery:
                check(
                    router.name, s, t, "guaranteed-delivery",
                    attempt.delivered == truth,
                    f"delivered={attempt.delivered} connected={truth}",
                )
            if router.guaranteed_detection:
                check(
                    router.name, s, t, "guaranteed-detection",
                    (not attempt.detected_failure) or not truth,
                    "failure detected although the pair is connected",
                )

    # --- the batched walk kernel against the scalar walks, pair for pair -- #
    # route_many(lockstep=True) routes the whole batch through the NumPy
    # lockstep kernel (scalar reference when NumPy is absent — the invariant
    # then degenerates to a self-check, which is exactly the fallback
    # contract); every element must equal the per-pair scalar result.
    batched_results = engine.route_many(pairs, provider=provider, lockstep=True)
    for (s, t), scalar_result, batched_result in zip(
        pairs, engine_results, batched_results
    ):
        check(
            "ues-engine", s, t, "batch-parity",
            batched_result == scalar_result,
            f"batched={batched_result} scalar={scalar_result}",
        )

    # --- heterogeneous capability budgets hold on the built topology ------- #
    if spec.family == "hetero-unit-disk":
        from repro.scenarios.capabilities import (
            assignment_for_spec,
            degree_budget_violations,
        )

        violations = degree_budget_violations(graph, assignment_for_spec(spec))
        tallies.setdefault("hetero-capabilities", _Tally()).pairs = len(graph.vertices)
        check(
            "hetero-capabilities", -1, -1, "hetero-degree-respected",
            not violations,
            f"degree over budget at (vertex, degree, budget): {violations}",
        )

    # --- streamed shard-local routing against the materialised union ------- #
    if is_streamed_scenario(spec):
        from repro.scenarios.streaming import family_from_spec, route_streamed_pairs

        streamed_results = route_streamed_pairs(
            family_from_spec(spec), list(pairs), provider=provider
        )
        tallies.setdefault("ues-streamed", _Tally()).pairs = len(pairs)
        for (s, t), union_result, shard_result in zip(
            pairs, engine_results, streamed_results
        ):
            check(
                "ues-streamed", s, t, "streamed-parity",
                shard_result == union_result,
                f"shard-local={shard_result} union={union_result}",
            )

    for router_name in sorted(tallies):
        tally = tallies[router_name]
        report.rows.append(
            [spec.name, router_name, tally.pairs, tally.delivered, tally.detected, tally.violations]
        )


# --------------------------------------------------------------------------- #
# Malicious-broadcast scenarios (the Byzantine axis)
# --------------------------------------------------------------------------- #


def _check_malicious_scenario(
    spec: ScenarioSpec,
    pairs_per_scenario: int,
    seed: int,
    provider: Optional[SequenceProvider],
    report: ConformanceReport,
) -> None:
    """Reliable broadcast under the spec's injected faults, all invariants.

    ``pairs_per_scenario`` runs are executed per scenario, each with a
    distinct deterministic ``(source, fault placement)`` drawn from ``seed``.
    The rb-* guarantees are asserted whenever the *total* fault count
    (Byzantine plus crashed — a crash is a special case of a Byzantine node)
    stays within ``f_tolerated``, which is how every generated scenario of
    :func:`malicious_broadcast_scenarios` is constructed.
    """
    network = build_scenario(spec)
    graph = network.graph
    params = dict(spec.extra)
    count = int(params.get(_MALICIOUS_KEY, 0))
    behavior = str(params.get("behavior", "mixed"))
    crash_count = int(params.get("crashes", 0))
    pool = BYZANTINE_BEHAVIORS if behavior == "mixed" else (behavior,)
    thresholds = QuorumThresholds.for_size(graph.num_vertices)
    # The honest-channel assumption Bracha's proof rides on: the UES walk
    # must be able to deliver between every pair of live nodes.
    assert is_connected(graph), (
        f"malicious scenario {spec.name} needs a connected graph"
    )
    transport = UESTransport(
        graph, provider=provider, namespace_size=network.namespace_size
    )
    vertices = sorted(graph.vertices)
    rng = random.Random(seed)
    tally = _Tally()

    def check(s: int, invariant: str, ok: bool, detail: str = "") -> None:
        report.checks += 1
        if not ok:
            report.violations.append(
                ConformanceViolation(spec.name, "rb-bracha", s, -1, invariant, detail)
            )
            tally.violations += 1

    for index in range(pairs_per_scenario):
        fault_seed = seed * 1009 + index
        source = rng.choice(vertices)
        plan = (
            ByzantinePlan.random_plan(graph, count, seed=fault_seed, behaviors=pool)
            if count
            else None
        )
        failures = None
        if crash_count:
            corrupted = set(plan.nodes()) if plan is not None else set()
            crashed = [v for v in reversed(vertices) if v not in corrupted]
            failures = FailurePlan(failed_nodes=set(crashed[:crash_count]))
        result = broadcast_reliably(
            graph, source, value="m", plan=plan, failures=failures,
            transport=transport,
        )
        tally.pairs += 1
        tally.delivered += int(result.all_honest_delivered)
        tally.detected += int(bool(result.evidence))

        total_faults = len(result.byzantine) + len(result.crashed)
        guaranteed = total_faults <= thresholds.f_tolerated
        if guaranteed:
            check(
                source, "rb-agreement", result.agreement,
                f"honest deliveries diverged: {result.honest_delivered}",
            )
            check(
                source, "rb-totality", result.totality,
                f"{len(result.honest_delivered)}/{len(result.honest)} honest delivered",
            )
            check(
                source, "rb-no-false-delivery", result.no_false_delivery,
                f"delivered outside origin-sent {result.origin_sent_values}: "
                f"{result.honest_delivered}",
            )
            source_honest = (
                result.source in result.honest
                or dict(result.byzantine).get(result.source) == "delay"
            )
            if source_honest:
                check(
                    source, "rb-validity",
                    result.all_honest_delivered
                    and all(v == "m" for _n, v in result.honest_delivered),
                    f"honest source, deliveries {result.honest_delivered}",
                )
        check(
            source, "rb-evidence-attributable",
            all(
                item.accused in dict(result.byzantine) for item in result.evidence
            ),
            f"evidence accuses a non-Byzantine node: {result.evidence}",
        )
        if failures is not None or plan is not None:
            # Satellite contract: applying the crash plan and the Byzantine
            # plan in either order must produce the identical run.
            swapped_faults = FaultModel()
            if failures is not None:
                swapped_faults = swapped_faults.with_crashes(failures)
            if plan is not None:
                swapped_faults = swapped_faults.with_byzantine(plan)
            swapped = broadcast_reliably(
                graph, source, value="m", faults=swapped_faults,
                transport=transport,
            )
            check(
                source, "rb-fault-composition",
                swapped == result,
                "crash-then-Byzantine differs from Byzantine-then-crash",
            )

    report.rows.append(
        [spec.name, "rb-bracha", tally.pairs, tally.delivered, tally.detected, tally.violations]
    )


# --------------------------------------------------------------------------- #
# Dynamic-schedule scenarios
# --------------------------------------------------------------------------- #


def _check_dynamic_scenario(
    spec: ScenarioSpec,
    pairs_per_scenario: int,
    seed: int,
    provider: Optional[SequenceProvider],
    report: ConformanceReport,
) -> None:
    schedule = build_schedule(spec)
    engine = prepare_schedule(schedule)
    base = schedule.snapshots[0]
    vertices = list(base.vertices)
    rng = random.Random(seed)
    pairs: List[Tuple[int, int]] = []
    for _ in range(pairs_per_scenario):
        s = rng.choice(vertices)
        t = rng.choice(vertices)
        while t == s and len(vertices) > 1:
            t = rng.choice(vertices)
        pairs.append((s, t))

    tally = _Tally()

    def check(s: int, t: int, invariant: str, ok: bool, detail: str = "") -> None:
        report.checks += 1
        if not ok:
            report.violations.append(
                ConformanceViolation(spec.name, "ues-schedule", s, t, invariant, detail)
            )
            tally.violations += 1

    # Same API-parity treatment as the static path: only on the
    # default-provider path, through a facade-built schedule.
    api_session = None
    if provider is None:
        from repro.api.executors import dynamic_result_payload
        from repro.api.requests import ScheduleRouteRequest
        from repro.api.session import Session

        api_session = Session()

    # Heterogeneous schedules (churn / mobility): every materialised snapshot
    # must respect the capability degree budgets the base was built under,
    # and churn delivery must track connectivity (see the per-pair check).
    churn_component_stable: Dict[frozenset, bool] = {}
    if spec.family in DYNAMIC_FAMILIES:
        from repro.scenarios.capabilities import (
            assignment_for_spec,
            degree_budget_violations,
        )

        assignment = assignment_for_spec(spec)
        for index, snapshot in enumerate(schedule.snapshots):
            budget_violations = degree_budget_violations(snapshot, assignment)
            check(
                -1, -1, "hetero-degree-respected",
                not budget_violations,
                f"snapshot {index} exceeds budgets at "
                f"(vertex, degree, budget): {budget_violations}",
            )

    def churn_component_untouched(component: frozenset) -> bool:
        # Churn only removes edges, and components are edge-closed, so the
        # source's base component is untouched by the whole schedule iff its
        # induced subgraph is identical in every snapshot — in which case the
        # dynamic walk degenerates to the static walk on snapshot 0.
        cached = churn_component_stable.get(component)
        if cached is None:
            base_induced = base.induced_subgraph(component)
            cached = all(
                snapshot.induced_subgraph(component) == base_induced
                for snapshot in schedule.snapshots[1:]
            )
            churn_component_stable[component] = cached
        return cached

    static_engine = prepare(base)
    scalar_results: List[object] = []
    for s, t in pairs:
        result = engine.route(s, t, provider=provider)
        scalar_results.append(result)
        tally.pairs += 1
        tally.delivered += int(result.outcome is DynamicOutcome.DELIVERED)
        tally.detected += int(result.outcome is DynamicOutcome.REPORTED_FAILURE)

        if api_session is not None:
            api_result = api_session.submit(
                ScheduleRouteRequest(scenario=spec, pairs=((s, t),))
            )
            check(
                s, t, "api-parity",
                api_result.payload["results"] == [dynamic_result_payload(result)],
                f"api={api_result.payload['results']} engine={result}",
            )

        reference = reference_route_over_schedule(schedule, s, t, provider=provider)
        check(
            s, t, "schedule-engine-parity",
            result == reference,
            f"engine={result} reference={reference}",
        )
        check(s, t, "delivery-is-sound", result.outcome is not DynamicOutcome.DELIVERED or result.sound)
        check(s, t, "stranding-is-unsound", result.outcome is not DynamicOutcome.STRANDED or not result.sound)
        if result.outcome is DynamicOutcome.REPORTED_FAILURE:
            check(
                s, t, "failure-soundness-label",
                result.sound == (not schedule.always_connected(s, t)),
                f"sound={result.sound}",
            )
        if schedule.is_static:
            static_result = static_engine.route(s, t, provider=provider)
            check(
                s, t, "static-schedule-degenerates",
                (result.outcome is DynamicOutcome.DELIVERED)
                == (static_result.outcome is RouteOutcome.SUCCESS)
                and result.outcome is not DynamicOutcome.STRANDED,
                f"dynamic={result.outcome.value} static={static_result.outcome.value}",
            )
        if spec.family == "churn":
            # Link churn only ever removes base edges, so a delivery implies
            # base (snapshot-0) connectivity unconditionally; and when the
            # source's base component is untouched by the whole trace, the
            # walk degenerates to static routing — delivery *iff* connected,
            # and no stranding.
            delivered = result.outcome is DynamicOutcome.DELIVERED
            base_connected = are_connected(base, s, t)
            if churn_component_untouched(frozenset(connected_component(base, s))):
                ok = (
                    delivered == base_connected
                    and result.outcome is not DynamicOutcome.STRANDED
                )
                detail = (
                    f"untouched component: outcome={result.outcome.value} "
                    f"base-connected={base_connected}"
                )
            else:
                ok = (not delivered) or base_connected
                detail = (
                    f"churned component: delivered={delivered} "
                    f"base-connected={base_connected}"
                )
            check(s, t, "churn-delivery-iff-connected", ok, detail)

    # The lockstep schedule stepper must agree with the scalar resumed walk
    # on every pair (scalar reference when NumPy is absent — see the static
    # path's batch-parity note).
    batched_results = engine.route_many(pairs, provider=provider, lockstep=True)
    for (s, t), scalar_result, batched_result in zip(
        pairs, scalar_results, batched_results
    ):
        check(
            s, t, "batch-parity",
            batched_result == scalar_result,
            f"batched={batched_result} scalar={scalar_result}",
        )

    report.rows.append(
        [spec.name, "ues-schedule", tally.pairs, tally.delivered, tally.detected, tally.violations]
    )
