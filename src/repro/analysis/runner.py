"""Sharded parallel sweep orchestrator over the scenario × router grid.

:func:`repro.analysis.experiments.run_parameter_sweep` walks its scenario
grid one instance at a time in one process; for the repeated-route workloads
the repository targets, the grid is embarrassingly parallel: every
(scenario, router) cell builds its own network and routes its own pairs, and
nothing flows between cells until the report table is assembled.  This module
shards that grid across a process pool:

* :func:`plan_sweep` expands scenarios × routers into a deterministic tuple
  of :class:`SweepShard` descriptors.  Each shard carries its *own* trial
  seed, derived from the master seed and the shard identity with
  :func:`shard_seed`, so the rows a shard produces do not depend on which
  worker runs it or in which order shards complete.
* :func:`evaluate_shard` is the worker body: it builds the shard's scenario
  locally (specs are tiny and picklable; graphs are not shipped between
  processes).  A per-process spec-keyed scenario cache plus the shared
  :func:`repro.core.engine.prepare` / ``prepare_schedule`` engine caches mean
  that shards over the same spec — one scenario routed by several routers —
  build and compile their graph once per worker process.
* :func:`evaluate_shards` is the batched worker body: all static
  engine-router shards of a group are aggregated into **one**
  :func:`repro.core.engine.route_many_multi` call, so every scenario's pairs
  advance together over the stacked multi-graph lockstep tensor
  (:class:`repro.core.batch_kernel.MultiGraphWalk`) — an entire sweep group
  becomes a handful of NumPy calls instead of a per-scenario Python loop.
  Rows are bitwise identical to :func:`evaluate_shard` (asserted by tests
  and ``benchmarks/bench_multigraph.py``); schedule and baseline shards run
  through :func:`evaluate_shard` unchanged.
* :func:`run_sweep` executes a plan.  ``workers <= 1`` runs the shards
  serially in-process — this is the executable reference the parallel path
  must match row for row.  ``workers > 1`` splits the shards into contiguous
  groups, submits the groups to a ``ProcessPoolExecutor`` (each worker runs
  its group through :func:`evaluate_shards`) and streams each shard's rows
  as its group completes (one flushed line per shard).  The stream is a
  :class:`repro.provenance.log.ResultLog`: a hash-chained JSONL log whose
  ``plan``/``shard`` records carry the legacy keys plus content addresses,
  so ``repro log verify``/``replay`` work on any sweep stream.  Rerunning
  with ``resume=True`` skips every shard whose record is on disk *and*
  passes its record-hash check — a tampered or truncated record (including
  the partial trailing line of a killed run) counts as missing and its
  shard re-executes.  Aggregation always replays the shards in plan order,
  so the resulting :class:`~repro.analysis.experiments.ExperimentResult` is
  row-for-row identical to a serial run with the same master seed, whatever
  the worker count or completion order was.  (The pre-provenance raw-JSONL
  reader/writer survive as the deprecated shims :func:`load_sweep_jsonl` /
  :func:`write_sweep_record`.)

The CLI front end is ``python -m repro sweep`` (see ``docs/cli.md``);
``benchmarks/bench_sweep.py`` measures the scaling and asserts aggregate
equality with the serial reference.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import Counter, OrderedDict
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.analysis.experiments import (
    POSITIONAL_FAMILIES,
    ExperimentResult,
    ScenarioSpec,
    build_scenario,
    build_schedule,
    is_dynamic_scenario,
    is_streamed_scenario,
    pick_source_target_pairs,
)
from repro.baselines import ALL_ROUTER_SPECS, router_applies
from repro.core.engine import (
    clear_prepared_caches,
    prepare,
    prepare_schedule,
    route_many_multi,
)
from repro.core.routing import RouteOutcome
from repro.errors import ExperimentError
from repro.network.dynamics import DynamicOutcome

__all__ = [
    "ENGINE_ROUTER",
    "SCHEDULE_ROUTER",
    "SWEEP_HEADERS",
    "SWEEP_ROUTERS",
    "SweepShard",
    "SweepPlan",
    "SweepOutcome",
    "shard_seed",
    "plan_sweep",
    "evaluate_shard",
    "evaluate_shards",
    "run_sweep",
    "parallel_map",
    "map_scenario_rows",
    "load_sweep_jsonl",
    "write_sweep_record",
]

#: Router name of the prepared engine (the guaranteed router's fast path).
ENGINE_ROUTER = "ues-engine"

#: Router name used for dynamic-schedule scenarios (the extension's walker).
SCHEDULE_ROUTER = "ues-schedule"

#: Columns of the standard sweep table, in row order.
SWEEP_HEADERS: Tuple[str, ...] = (
    "scenario",
    "family",
    "size",
    "router",
    "source",
    "target",
    "delivered",
    "detected",
    "hops",
    "steps",
)

#: Every router name :func:`plan_sweep` accepts for static scenarios.
SWEEP_ROUTERS: Tuple[str, ...] = (ENGINE_ROUTER,) + tuple(
    spec.name for spec in ALL_ROUTER_SPECS
)

_T = TypeVar("_T")
_R = TypeVar("_R")


def shard_seed(master_seed: int, *labels: object) -> int:
    """Deterministic per-shard trial seed: hash of master seed + identity.

    A stable cryptographic digest (not Python's randomised ``hash``) keyed by
    the shard's identity labels, so every process — serial reference, any
    worker, any rerun — derives the identical seed for the same shard.
    """
    payload = repr((master_seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepShard:
    """One cell of the sweep grid: a scenario routed by one router.

    ``seed`` is the shard's private trial seed (pair selection, randomised
    baselines), already derived from the plan's master seed — workers never
    see the master seed and cannot depend on global RNG state.
    """

    index: int
    spec: ScenarioSpec
    router: str
    pairs: int
    seed: int

    @property
    def key(self) -> str:
        """Human-readable shard label (for JSONL records and progress)."""
        return f"{self.spec.name}:{self.router}"


@dataclass(frozen=True)
class SweepPlan:
    """A fully expanded sweep: the shard tuple plus the table schema."""

    experiment: str
    headers: Tuple[str, ...]
    shards: Tuple[SweepShard, ...]
    master_seed: int

    def fingerprint(self) -> str:
        """Stable digest of the whole plan (used to guard ``--resume``).

        Two plans fingerprint equally iff they would execute the same shards
        and produce the same table schema, so resuming against a JSONL file
        written by a *different* sweep is rejected instead of silently
        merging unrelated rows.  Streaming/resume therefore needs every
        scenario parameter to be JSON-serializable — an unstable fallback
        repr (memory addresses change per process) would make a plan reject
        its own stream on every rerun, so non-serializable extras raise
        instead.
        """
        payload = {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "master_seed": self.master_seed,
            "shards": [
                {
                    "index": shard.index,
                    "spec": dataclasses.asdict(shard.spec),
                    "router": shard.router,
                    "pairs": shard.pairs,
                    "seed": shard.seed,
                }
                for shard in self.shards
            ],
        }
        try:
            canonical = json.dumps(payload, sort_keys=True)
        except (TypeError, ValueError) as error:
            raise ExperimentError(
                "cannot fingerprint this sweep plan: streaming/resume needs "
                f"JSON-serializable scenario parameters ({error})"
            )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class SweepOutcome:
    """What :func:`run_sweep` did: the aggregated table plus shard accounting."""

    table: ExperimentResult
    shards_total: int
    shards_skipped: int
    shards_executed: int
    out_path: Optional[str] = None


def _router_by_name(name: str):
    for router in ALL_ROUTER_SPECS:
        if router.name == name:
            return router
    raise ExperimentError(f"unknown sweep router {name!r}")


def _router_applies(name: str, spec: ScenarioSpec) -> bool:
    """Static applicability check — no scenario is built at planning time.

    Delegates to the shared policy :func:`repro.baselines.router_applies`;
    only the "does this scenario have positions" question is answered from
    the spec (the :data:`~repro.analysis.experiments.POSITIONAL_FAMILIES`
    deploy nodes) instead of from a built network.
    """
    if name == ENGINE_ROUTER:
        return True
    return router_applies(
        _router_by_name(name), spec.family in POSITIONAL_FAMILIES, spec.dimension
    )


def plan_sweep(
    scenarios: Sequence[ScenarioSpec],
    routers: Sequence[str] = (ENGINE_ROUTER,),
    pairs: int = 8,
    master_seed: int = 0,
    experiment: str = "sweep",
) -> SweepPlan:
    """Expand scenarios × routers into a deterministic :class:`SweepPlan`.

    Static scenarios are paired with every requested router that applies to
    them (position-based baselines are skipped off unit-disk deployments,
    planar-only routers off 3D ones).  Dynamic-schedule scenarios are always
    routed by :data:`SCHEDULE_ROUTER` — the baselines have no dynamic
    contract to check.  Shard indices follow the given scenario order, which
    is the row order of the aggregated table.
    """
    for router in routers:
        if router not in SWEEP_ROUTERS and router != SCHEDULE_ROUTER:
            raise ExperimentError(
                f"unknown sweep router {router!r}; expected one of "
                f"{SWEEP_ROUTERS + (SCHEDULE_ROUTER,)}"
            )
    if pairs < 1:
        raise ExperimentError("a sweep needs at least one pair per shard")
    scenarios = list(scenarios)  # tolerate one-shot iterables; iterated twice
    # Shard identity (and thus the trial seed) is (spec.name, router): two
    # distinct scenarios sharing a name would collide silently, so refuse.
    name_counts = Counter(spec.name for spec in scenarios)
    duplicates = sorted(name for name, count in name_counts.items() if count > 1)
    if duplicates:
        raise ExperimentError(
            f"scenario names must be unique within a sweep; duplicated: {duplicates}"
        )
    shards: List[SweepShard] = []
    for spec in scenarios:
        if is_dynamic_scenario(spec):
            shard_routers = (SCHEDULE_ROUTER,)
        elif is_streamed_scenario(spec):
            # Streamed scenarios are routed shard by shard without ever
            # materialising the union, which only the prepared engine can do;
            # the baselines would need the whole graph resident.
            shard_routers = tuple(r for r in routers if r == ENGINE_ROUTER)
        else:
            # The schedule walker has no static contract; requesting it (the
            # exported SCHEDULE_ROUTER constant is a valid router name) only
            # selects the dynamic scenarios of a mixed grid.
            shard_routers = tuple(r for r in routers if r != SCHEDULE_ROUTER)
        for router in shard_routers:
            if router != SCHEDULE_ROUTER and not _router_applies(router, spec):
                continue
            shards.append(
                SweepShard(
                    index=len(shards),
                    spec=spec,
                    router=router,
                    pairs=pairs,
                    seed=shard_seed(master_seed, spec.name, router),
                )
            )
    if not shards:
        raise ExperimentError("sweep plan is empty: no (scenario, router) cell applies")
    return SweepPlan(
        experiment=experiment,
        headers=SWEEP_HEADERS,
        shards=tuple(shards),
        master_seed=master_seed,
    )


#: Per-process cache of materialised scenarios, keyed by spec (specs are
#: frozen dataclasses, hashable unless a caller smuggles unhashable values
#: into ``extra``).  Shards with the same spec — one scenario routed by
#: several routers — then share one graph/schedule *object*, which is exactly
#: what lets the identity-keyed :func:`repro.core.engine.prepare` /
#: ``prepare_schedule`` caches hit across shards within a worker.  Bounded so
#: a worker that sees many scenarios does not pin them all.
_SCENARIO_CACHE: "OrderedDict[Tuple[str, ScenarioSpec], object]" = OrderedDict()
_SCENARIO_CACHE_LIMIT = 32


def _materialise(kind: str, spec: ScenarioSpec, build: Callable[[ScenarioSpec], object]):
    try:
        key = (kind, spec)
        cached = _SCENARIO_CACHE.get(key)
    except TypeError:  # unhashable extra values: build fresh, skip caching
        return build(spec)
    if cached is None:
        cached = build(spec)
        _SCENARIO_CACHE[key] = cached
        while len(_SCENARIO_CACHE) > _SCENARIO_CACHE_LIMIT:
            _SCENARIO_CACHE.popitem(last=False)
    else:
        _SCENARIO_CACHE.move_to_end(key)
    return cached


def _row(
    spec: ScenarioSpec,
    router: str,
    source: int,
    target: int,
    delivered: bool,
    detected: bool,
    hops: Optional[int],
    steps: Optional[int],
) -> List[object]:
    # Cells are JSON primitives only, so a row survives the JSONL round trip
    # bit for bit and resumed shards aggregate identically to fresh ones.
    return [
        spec.name,
        spec.family,
        spec.size,
        router,
        source,
        target,
        bool(delivered),
        bool(detected),
        hops,
        steps,
    ]


def _engine_rows(
    spec: ScenarioSpec,
    router: str,
    pairs: Sequence[Tuple[int, int]],
    results: Sequence[object],
) -> List[List[object]]:
    """Table rows of one engine-router shard from its ``RouteResult`` list.

    Shared by the per-shard path (:func:`evaluate_shard`) and the batched
    multi-graph path (:func:`evaluate_shards`), so the two cannot disagree
    on how a result becomes a row.
    """
    return [
        _row(
            spec,
            router,
            source,
            target,
            delivered=result.delivered,
            detected=result.outcome is RouteOutcome.FAILURE,
            hops=result.physical_hops,
            steps=result.total_virtual_steps,
        )
        for (source, target), result in zip(pairs, results)
    ]


def evaluate_shard(shard: SweepShard) -> List[List[object]]:
    """Build the shard's scenario locally and produce its table rows.

    Runs in a worker process (or inline on the serial path — same code, same
    rows).  Scenarios are materialised through a per-process spec-keyed cache
    and all topology state goes through the shared per-process engine caches
    (:func:`repro.core.engine.prepare` / ``prepare_schedule``), so a worker
    that receives several shards over the same spec builds and compiles its
    graph exactly once.  The engine and schedule shards route their pairs in
    one ``route_many`` call, so a shard whose batch is large enough rides the
    lockstep batched walk kernel (:mod:`repro.core.batch_kernel`) inside its
    worker; small shards take the scalar reference loop — rows are identical
    either way.  Caching is an optimisation only: scenario construction is
    deterministic per spec, so the rows are identical with the caches
    cleared.
    """
    spec = shard.spec
    if shard.router == SCHEDULE_ROUTER:
        schedule = _materialise("schedule", spec, build_schedule)
        engine = prepare_schedule(schedule)
        pairs = pick_source_target_pairs(schedule.snapshots[0], shard.pairs, seed=shard.seed)
        return [
            _row(
                spec,
                shard.router,
                source,
                target,
                delivered=result.outcome is DynamicOutcome.DELIVERED,
                detected=result.outcome is DynamicOutcome.REPORTED_FAILURE,
                hops=None,
                steps=result.steps_taken,
            )
            for (source, target), result in zip(pairs, engine.route_many(pairs))
        ]
    if is_streamed_scenario(spec):
        # Shard-local routing: pairs are drawn inside shards and routed on
        # the local shard graphs — the union is never materialised, so the
        # worker's resident memory is bounded by the shard size.
        from repro.scenarios.streaming import (
            family_from_spec,
            pick_streamed_pairs,
            route_streamed_pairs,
        )

        family = family_from_spec(spec)
        pairs = pick_streamed_pairs(family, shard.pairs, seed=shard.seed)
        results = route_streamed_pairs(family, pairs)
        return _engine_rows(spec, shard.router, pairs, results)
    network = _materialise("network", spec, build_scenario)
    pairs = pick_source_target_pairs(network, shard.pairs, seed=shard.seed)
    if shard.router == ENGINE_ROUTER:
        engine = prepare(network.graph)
        results = engine.route_many(pairs, namespace_size=network.namespace_size)
        return _engine_rows(spec, shard.router, pairs, results)
    router = _router_by_name(shard.router)
    rows: List[List[object]] = []
    for source, target in pairs:
        attempt = router.run(network.graph, network.deployment, source, target, shard.seed)
        rows.append(
            _row(
                spec,
                shard.router,
                source,
                target,
                delivered=attempt.delivered,
                detected=attempt.detected_failure,
                hops=attempt.hops,
                steps=None,
            )
        )
    return rows


def evaluate_shards(
    shards: Sequence[SweepShard],
    multigraph: Optional[bool] = None,
) -> List[List[List[object]]]:
    """Evaluate several shards at once; returns rows per shard, in order.

    All static engine-router shards are aggregated into one
    :func:`repro.core.engine.route_many_multi` call: every scenario's graph
    is prepared (once, via the shared kernel-store caches), and all
    scenarios' pairs advance together over the stacked multi-graph lockstep
    tensor — a handful of NumPy calls for the whole group, instead of
    re-entering Python per scenario.  Schedule and baseline shards run
    through :func:`evaluate_shard` unchanged.

    ``multigraph`` is the dispatch tri-state: ``None`` (default) lets the
    aggregate batch size decide (small groups fall back to the scalar
    reference, exactly like ``route_many``), ``True`` forces the stacked
    kernel, ``False`` reproduces the per-shard PR-5 path — one
    :func:`evaluate_shard` call per shard — which is the comparator
    ``benchmarks/bench_multigraph.py`` measures against.  Rows are bitwise
    identical for every setting.
    """
    shards = list(shards)
    rows_by_index: Dict[int, List[List[object]]] = {}
    engine_shards: List[SweepShard] = []
    for shard in shards:
        if (
            multigraph is not False
            and shard.router == ENGINE_ROUTER
            and not is_streamed_scenario(shard.spec)
        ):
            engine_shards.append(shard)
        else:
            rows_by_index[shard.index] = evaluate_shard(shard)
    if engine_shards:
        tasks = []
        shard_pairs: List[List[Tuple[int, int]]] = []
        for shard in engine_shards:
            network = _materialise("network", shard.spec, build_scenario)
            pairs = pick_source_target_pairs(network, shard.pairs, seed=shard.seed)
            shard_pairs.append(pairs)
            tasks.append((prepare(network.graph), pairs, network.namespace_size))
        batched = route_many_multi(
            tasks, lockstep=True if multigraph else None
        )
        for shard, pairs, results in zip(engine_shards, shard_pairs, batched):
            rows_by_index[shard.index] = _engine_rows(
                shard.spec, shard.router, pairs, results
            )
    return [rows_by_index[shard.index] for shard in shards]


def _evaluate_shard_group(
    group: Tuple[Tuple[SweepShard, ...], Optional[bool]]
) -> List[Tuple[int, List[List[object]]]]:
    """Picklable pool task: one worker's shard group through ``evaluate_shards``."""
    shards, multigraph = group
    rows = evaluate_shards(shards, multigraph=multigraph)
    return [(shard.index, shard_rows) for shard, shard_rows in zip(shards, rows)]


# --------------------------------------------------------------------------- #
# Result-log streaming and resume
# --------------------------------------------------------------------------- #


def _write_record(handle, record: Dict[str, object]) -> None:
    handle.write(json.dumps(record) + "\n")
    # One flushed line per shard: a crash loses only the shards in flight.
    handle.flush()


def _load_jsonl(path: str) -> Tuple[Optional[Dict[str, object]], Dict[int, Dict[str, object]]]:
    """Tolerantly parse a sweep JSONL file (raw view, no hash validation).

    Returns the first plan header (if any) and the last record seen for each
    shard index.  Unparseable lines — typically the partial trailing line of
    a killed run — are skipped rather than fatal, which is what makes the
    stream crash-safe.
    """
    header: Optional[Dict[str, object]] = None
    shards: Dict[int, Dict[str, object]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "plan" and header is None:
                header = record
            elif kind == "shard" and isinstance(record.get("index"), int):
                shards[record["index"]] = record
    return header, shards


def load_sweep_jsonl(
    path: str,
) -> Tuple[Optional[Dict[str, object]], Dict[int, Dict[str, object]]]:
    """Deprecated raw reader for sweep streams; use the provenance log view.

    Sweep streams are hash-chained :class:`repro.provenance.log.ResultLog`
    files now; read them through :func:`repro.provenance.log.read_log`
    (tolerant) or :func:`repro.provenance.log.verify_log` (strict), which
    validate record hashes instead of trusting every parseable line.  This
    shim keeps the old header/shard-map shape working bit-for-bit.
    """
    from repro.deprecation import warn_once

    warn_once(
        "runner.load_sweep_jsonl",
        "load_sweep_jsonl is deprecated: sweep streams are provenance logs; "
        "read them with repro.provenance.log.read_log / verify_log",
    )
    return _load_jsonl(path)


def write_sweep_record(handle, record: Dict[str, object]) -> None:
    """Deprecated raw writer for sweep records; append through a ResultLog.

    Records written this way carry no ``record_hash``/``parent`` seal, so a
    resuming :func:`run_sweep` treats them as missing and re-executes their
    shards.  Append through
    :meth:`repro.provenance.log.ResultLog.append` instead.
    """
    from repro.deprecation import warn_once

    warn_once(
        "runner.write_sweep_record",
        "write_sweep_record is deprecated: append sweep records through "
        "repro.provenance.log.ResultLog so they join the hash chain",
    )
    _write_record(handle, record)


def _plan_record_address(fingerprint: Optional[str]) -> str:
    from repro.provenance.records import (
        PROVENANCE_SCHEMA_VERSION,
        code_version,
        content_address,
    )

    return content_address(
        {
            "kind": "plan",
            "fingerprint": fingerprint,
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "code_version": code_version(),
        }
    )


def _shard_record_address(fingerprint: Optional[str], shard: SweepShard) -> str:
    """Content address of one shard cell: spec + router + pair count + seed."""
    from repro.provenance.records import (
        PROVENANCE_SCHEMA_VERSION,
        code_version,
        content_address,
    )

    return content_address(
        {
            "kind": "shard",
            "fingerprint": fingerprint,
            "index": shard.index,
            "spec": dataclasses.asdict(shard.spec),
            "router": shard.router,
            "pairs": shard.pairs,
            "seed": shard.seed,
            "schema_version": PROVENANCE_SCHEMA_VERSION,
            "code_version": code_version(),
        }
    )


def _worker_init() -> None:
    # A forked worker inherits the parent's warm scenario and prepared-engine
    # caches; dropping them makes worker behaviour identical across start
    # methods and keeps the parent's graphs from being pinned in every worker.
    _SCENARIO_CACHE.clear()
    clear_prepared_caches()


def run_sweep(
    plan: SweepPlan,
    workers: int = 1,
    out_path: Optional[str] = None,
    resume: bool = False,
    multigraph: Optional[bool] = None,
) -> SweepOutcome:
    """Execute a sweep plan; return the deterministic aggregated table.

    ``workers <= 1`` runs every pending shard in-process through one
    :func:`evaluate_shards` call, so all static engine shards share one
    multi-graph lockstep run — the executable reference.  ``workers > 1``
    splits the pending shards into contiguous groups and fans the groups out
    over a process pool; each worker batches its group the same way.  Either
    way, when ``out_path`` is given each completed shard is appended to it
    as one hash-chained :class:`repro.provenance.log.ResultLog` record, and
    with ``resume=True`` shards whose records are already on disk (from a
    previous, possibly killed, run of the *same* plan) *and* pass their
    record-hash check are skipped — the chain seal, not just the plan
    fingerprint, decides what counts as done.

    ``multigraph`` forwards the dispatch tri-state of
    :func:`evaluate_shards`: ``None`` auto-dispatches on aggregate batch
    size, ``True`` forces the stacked multi-graph kernel, ``False``
    reproduces the per-shard PR-5 path.  Rows are bitwise identical for
    every setting and every worker count: aggregation replays the shards in
    plan order, so the returned table matches the serial reference
    regardless of completion order or how many shards were resumed.
    """
    if resume and out_path is None:
        raise ExperimentError("resume=True needs an out_path: there is no shard stream to resume from")
    # Only the log header and the resume guard read the fingerprint; pure
    # in-memory sweeps skip the O(shards) serialise-and-hash entirely.
    fingerprint = plan.fingerprint() if out_path is not None else None
    completed: Dict[int, List[List[object]]] = {}
    mode = "w"
    if out_path is not None and resume and os.path.exists(out_path):
        # Hash-validated view: a record whose seal does not verify — tampered
        # bytes, a truncated tail, or a legacy unsealed record — is invisible
        # here, so its shard re-executes and the stream self-heals.
        from repro.provenance.log import read_log

        records, _issues = read_log(out_path)
        header = next(
            (record for record in records if record.get("kind") == "plan"), None
        )
        if header is None:
            # A non-empty file without a chain-valid plan header is not ours
            # to overwrite — it is either unrelated data or a sweep stream
            # whose header was corrupted; truncating it would destroy rows.
            # (An empty file — e.g. a crash before the header write — is a
            # fresh start.)
            if os.path.getsize(out_path) > 0:
                raise ExperimentError(
                    f"cannot resume {out_path!r}: no sweep plan header found "
                    "(not a sweep stream, or its header line is corrupted) — "
                    "move the file aside or rerun without resume"
                )
        else:
            if header.get("fingerprint") != fingerprint:
                raise ExperimentError(
                    f"cannot resume {out_path!r}: it records a different sweep plan"
                )
            mode = "a"
        for record in records:
            if record.get("kind") != "shard":
                continue
            index = record.get("index")
            rows = record.get("rows")
            if (
                isinstance(index, int)
                and record.get("fingerprint") == fingerprint
                and 0 <= index < len(plan.shards)
                and isinstance(rows, list)
                # Belt and braces under the hash check: a record whose rows
                # do not match the plan's table schema is treated as missing
                # so its shard re-executes instead of poisoning aggregation.
                and all(
                    isinstance(row, list) and len(row) == len(plan.headers)
                    for row in rows
                )
            ):
                completed[index] = rows

    pending = [shard for shard in plan.shards if shard.index not in completed]
    skipped = len(plan.shards) - len(pending)

    # The log heals a partial trailing line at open (flushing before the pool
    # forks, so no worker inherits a non-empty write buffer) and chains new
    # records onto the last hash-valid record already on disk.
    log = None
    if out_path is not None:
        from repro.provenance.log import ResultLog

        log = ResultLog(out_path, mode)
    try:
        if log is not None and mode == "w":
            log.append(
                "plan",
                {
                    "experiment": plan.experiment,
                    "fingerprint": fingerprint,
                    "headers": list(plan.headers),
                    "shards": len(plan.shards),
                },
                address=_plan_record_address(fingerprint),
            )

        def record_shard(shard: SweepShard, rows: List[List[object]]) -> None:
            completed[shard.index] = rows
            if log is not None:
                log.append(
                    "shard",
                    {
                        "fingerprint": fingerprint,
                        "index": shard.index,
                        "shard": shard.key,
                        "spec": dataclasses.asdict(shard.spec),
                        "router": shard.router,
                        "pairs": shard.pairs,
                        "seed": shard.seed,
                        "rows": rows,
                    },
                    address=_shard_record_address(fingerprint, shard),
                )

        if workers <= 1 or len(pending) <= 1:
            for shard, rows in zip(
                pending, evaluate_shards(pending, multigraph=multigraph)
            ):
                record_shard(shard, rows)
        elif pending:
            # Contiguous groups preserve plan locality (shards over the same
            # spec land in the same worker) and let each worker batch its
            # whole group through one multi-graph lockstep run.
            group_count = min(workers, len(pending))
            base, extra = divmod(len(pending), group_count)
            groups: List[Tuple[SweepShard, ...]] = []
            cursor = 0
            for group_index in range(group_count):
                size = base + (1 if group_index < extra else 0)
                groups.append(tuple(pending[cursor : cursor + size]))
                cursor += size
            shard_of = {shard.index: shard for shard in pending}
            with ProcessPoolExecutor(
                max_workers=group_count, initializer=_worker_init
            ) as pool:
                futures = [
                    pool.submit(_evaluate_shard_group, (group, multigraph))
                    for group in groups
                ]
                for future in as_completed(futures):
                    for index, rows in future.result():
                        record_shard(shard_of[index], rows)
    finally:
        if log is not None:
            log.close()

    table = ExperimentResult(experiment=plan.experiment, headers=list(plan.headers))
    for shard in plan.shards:
        for row in completed[shard.index]:
            table.add_row(row)
    return SweepOutcome(
        table=table,
        shards_total=len(plan.shards),
        shards_skipped=skipped,
        shards_executed=len(pending),
        out_path=out_path,
    )


# --------------------------------------------------------------------------- #
# Generic process-pool helpers (parameter sweeps, conformance)
# --------------------------------------------------------------------------- #


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], workers: int
) -> List[_R]:
    """Order-preserving map over a process pool (serial when it cannot help).

    ``fn`` and every item must be picklable (module-level functions, plain
    data).  With ``workers <= 1`` or fewer than two items this degenerates to
    a plain in-process loop, which is also the executable reference for what
    the pool must produce.

    A worker killed mid-task (OOM killer, SIGKILL) breaks the whole pool:
    every pending future raises :class:`BrokenProcessPool`, which used to lose
    the entire batch.  The map recovers by re-running exactly the items whose
    futures produced no result serially in the parent — ``fn`` is
    deterministic per item, so the recovered results are order- and
    bit-identical to an undisturbed run.  Exceptions raised by ``fn`` itself
    are not retried; they propagate as before.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    completed: Dict[int, _R] = {}
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)), initializer=_worker_init
        ) as pool:
            futures = {}
            try:
                for index, item in enumerate(items):
                    futures[index] = pool.submit(fn, item)
            except BrokenProcessPool:
                pass  # pool died during submission; unsubmitted items retry below
            for index, future in futures.items():
                try:
                    completed[index] = future.result()
                except BrokenProcessPool:
                    continue  # lost with the crashed worker; retry below
    except BrokenProcessPool:
        pass  # broke while shutting the pool down; survivors are in `completed`
    return [
        completed[index] if index in completed else fn(item)
        for index, item in enumerate(items)
    ]


def _scenario_rows_task(task: Tuple[Callable[..., Iterable[Sequence[object]]], ScenarioSpec]):
    evaluate, spec = task
    network = build_scenario(spec)
    return [list(row) for row in evaluate(spec, network)]


def map_scenario_rows(
    evaluate: Callable[..., Iterable[Sequence[object]]],
    scenarios: Sequence[ScenarioSpec],
    workers: int,
) -> List[List[List[object]]]:
    """Evaluate every scenario in parallel; rows grouped per scenario, in order.

    The worker body is exactly the reference sweep's loop body: build the
    scenario, materialise ``evaluate``'s rows.  ``evaluate`` must be
    picklable (a module-level function) and deterministic per ``(spec,
    network)`` — cross-call state does not survive the process boundary.
    """
    return parallel_map(
        _scenario_rows_task, [(evaluate, spec) for spec in scenarios], workers
    )
