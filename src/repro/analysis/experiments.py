"""Scenario construction and parameter sweeps for the experiment harness.

A :class:`ScenarioSpec` describes one network instance to evaluate (topology
family, size, radius, seed, dimension); :func:`run_parameter_sweep` evaluates
a caller-supplied function over a list of scenarios and collects rows for the
report tables.  The benchmark modules in ``benchmarks/`` are thin wrappers
around these helpers, so the same sweeps can also be run interactively from
the examples.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.graphs import generators
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork, build_graph_network, build_unit_disk_network

__all__ = [
    "ScenarioSpec",
    "ExperimentResult",
    "build_scenario",
    "unit_disk_scenarios",
    "structured_scenarios",
    "run_parameter_sweep",
    "pick_source_target_pairs",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One network instance the harness should build and evaluate."""

    name: str
    family: str
    size: int
    seed: int = 0
    radius: Optional[float] = None
    dimension: int = 2
    namespace_size: Optional[int] = None
    extra: Tuple[Tuple[str, object], ...] = ()

    def parameters(self) -> Dict[str, object]:
        """All parameters as a dictionary (for report rows)."""
        params: Dict[str, object] = {
            "name": self.name,
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "dimension": self.dimension,
        }
        if self.radius is not None:
            params["radius"] = self.radius
        params.update(dict(self.extra))
        return params


@dataclass
class ExperimentResult:
    """Rows accumulated by a sweep, plus the header naming their columns."""

    experiment: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, row: Sequence[object]) -> None:
        """Append one row, validating its width."""
        if len(row) != len(self.headers):
            raise ExperimentError(
                f"experiment {self.experiment!r}: row width {len(row)} != {len(self.headers)}"
            )
        self.rows.append(list(row))


def build_scenario(spec: ScenarioSpec) -> AdHocNetwork:
    """Materialise a scenario into an :class:`AdHocNetwork`.

    Families: ``unit-disk`` (requires ``radius``), ``grid``, ``torus``,
    ``ring``, ``prism``, ``random-regular``, ``erdos-renyi``, ``lollipop``,
    ``tree``.
    """
    family = spec.family
    if family == "unit-disk":
        if spec.radius is None:
            raise ExperimentError("unit-disk scenarios need a radius")
        return build_unit_disk_network(
            spec.size,
            spec.radius,
            dimension=spec.dimension,
            seed=spec.seed,
            namespace_size=spec.namespace_size,
        )
    graph = _structured_graph(spec)
    return build_graph_network(graph, namespace_size=spec.namespace_size)


def _structured_graph(spec: ScenarioSpec) -> LabeledGraph:
    family, size, seed = spec.family, spec.size, spec.seed
    extra = dict(spec.extra)
    if family == "grid":
        side = max(2, int(round(size ** 0.5)))
        return generators.grid_graph(side, side)
    if family == "torus":
        side = max(3, int(round(size ** 0.5)))
        return generators.torus_graph(side, side)
    if family == "ring":
        return generators.cycle_graph(max(3, size))
    if family == "prism":
        return generators.prism_graph(max(3, size // 2))
    if family == "random-regular":
        degree = int(extra.get("degree", 3))
        n = size if (size * degree) % 2 == 0 else size + 1
        return generators.random_regular_graph(n, degree, seed=seed)
    if family == "erdos-renyi":
        probability = float(extra.get("p", 0.1))
        return generators.erdos_renyi_graph(size, probability, seed=seed)
    if family == "lollipop":
        clique = max(3, size // 2)
        return generators.lollipop_graph(clique, max(1, size - clique))
    if family == "tree":
        return generators.random_tree(max(1, size), seed=seed)
    raise ExperimentError(f"unknown scenario family {family!r}")


def unit_disk_scenarios(
    sizes: Sequence[int],
    radius: float,
    dimension: int = 2,
    seeds: Sequence[int] = (0,),
) -> List[ScenarioSpec]:
    """A grid of unit-disk scenarios over sizes × seeds."""
    return [
        ScenarioSpec(
            name=f"udg{dimension}d-n{size}-s{seed}",
            family="unit-disk",
            size=size,
            seed=seed,
            radius=radius,
            dimension=dimension,
        )
        for size, seed in itertools.product(sizes, seeds)
    ]


def structured_scenarios(
    family: str, sizes: Sequence[int], seeds: Sequence[int] = (0,), **extra: object
) -> List[ScenarioSpec]:
    """A grid of structured-topology scenarios over sizes × seeds."""
    extras = tuple(sorted(extra.items()))
    return [
        ScenarioSpec(
            name=f"{family}-n{size}-s{seed}",
            family=family,
            size=size,
            seed=seed,
            extra=extras,
        )
        for size, seed in itertools.product(sizes, seeds)
    ]


def pick_source_target_pairs(
    network: AdHocNetwork, pairs: int, seed: int = 0, distinct: bool = True
) -> List[Tuple[int, int]]:
    """Deterministically choose source/target node pairs for an experiment."""
    vertices = list(network.graph.vertices)
    if not vertices:
        raise ExperimentError("cannot pick pairs from an empty network")
    rng = random.Random(seed)
    chosen: List[Tuple[int, int]] = []
    for _ in range(pairs):
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        if distinct and len(vertices) > 1:
            while target == source:
                target = rng.choice(vertices)
        chosen.append((source, target))
    return chosen


def run_parameter_sweep(
    experiment: str,
    headers: Sequence[str],
    scenarios: Sequence[ScenarioSpec],
    evaluate: Callable[[ScenarioSpec, AdHocNetwork], Iterable[Sequence[object]]],
) -> ExperimentResult:
    """Build every scenario and collect the rows ``evaluate`` produces for it."""
    result = ExperimentResult(experiment=experiment, headers=list(headers))
    for spec in scenarios:
        network = build_scenario(spec)
        for row in evaluate(spec, network):
            result.add_row(row)
    return result
