"""Scenario construction and parameter sweeps for the experiment harness.

A :class:`ScenarioSpec` describes one network instance to evaluate (topology
family, size, radius, seed, dimension); :func:`run_parameter_sweep` evaluates
a caller-supplied function over a list of scenarios and collects rows for the
report tables.  The benchmark modules in ``benchmarks/`` are thin wrappers
around these helpers, so the same sweeps can also be run interactively from
the examples.

A spec can also describe a *dynamic-schedule* scenario (an extension beyond
the paper's static model): :func:`build_schedule` derives a
:class:`~repro.network.dynamics.TopologySchedule` from the spec's base
topology by applying a per-snapshot mutation (``relabel`` permutes port
labels, ``drop-edge`` removes a link, ``static`` repeats the base graph),
which is the workload the schedule-aware engine and the conformance harness
exercise.

**Serial reference vs. parallel split.**
:func:`reference_run_parameter_sweep` is the executable specification of a
sweep: one process, scenarios in order, rows in order — it is never edited
for speed.  :func:`run_parameter_sweep` keeps that exact behaviour for
``workers <= 1`` and otherwise shards the scenario grid over a process pool
via :mod:`repro.analysis.runner`, with the guarantee that the aggregated
:class:`ExperimentResult` is row-for-row identical to the reference.  The
same runner module provides the full scenario × router sweep orchestrator
(`plan_sweep` / `run_sweep`) with JSONL streaming and crash-safe resume.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.deprecation import warn_once
from repro.errors import ExperimentError, GraphStructureError
from repro.graphs import generators
from repro.graphs.labeled_graph import LabeledGraph
from repro.network.adhoc import AdHocNetwork, build_graph_network, build_unit_disk_network
from repro.network.dynamics import TopologySchedule

__all__ = [
    "SCENARIO_FAMILIES",
    "SCHEDULE_MUTATIONS",
    "ScenarioSpec",
    "ExperimentResult",
    "ExperimentTable",
    "reference_run_parameter_sweep",
    "is_dynamic_scenario",
    "is_streamed_scenario",
    "build_scenario",
    "build_schedule",
    "unit_disk_scenarios",
    "structured_scenarios",
    "dynamic_schedule_scenarios",
    "run_parameter_sweep",
    "pick_source_target_pairs",
]

#: Snapshot mutations understood by :func:`build_schedule`.
SCHEDULE_MUTATIONS = ("static", "relabel", "drop-edge")

#: Topology families :func:`build_scenario` understands — the canonical list
#: the CLI's ``--family``/``--families`` choices are derived from.
SCENARIO_FAMILIES = (
    "unit-disk",
    "grid",
    "torus",
    "ring",
    "prism",
    "random-regular",
    "erdos-renyi",
    "lollipop",
    "tree",
    "two-rings",
    "hetero-unit-disk",
    "churn",
    "mobility",
    "streamed-grid",
    "streamed-torus",
    "streamed-ring",
    "streamed-unit-disk",
)

#: Families that are dynamic *by construction*: their spec always
#: materialises through :func:`build_schedule` (churn traces / waypoint
#: mobility over a heterogeneous base), extras or not.
DYNAMIC_FAMILIES = ("churn", "mobility")

#: Radius-bearing families: positioned deployments under a radio range.
POSITIONAL_FAMILIES = ("unit-disk", "hetero-unit-disk", "churn", "mobility")

#: ``extra`` keys that mark a spec as a dynamic-schedule scenario.
_SCHEDULE_KEYS = ("snapshots", "mutation", "switch_every")


def is_dynamic_scenario(spec: "ScenarioSpec") -> bool:
    """True when the spec describes a dynamic-schedule scenario.

    The single source of truth for the distinction: the sweep planner routes
    dynamic specs through the schedule walker and the conformance harness
    checks them against the dynamic invariants.  A spec is dynamic when its
    family is inherently dynamic (:data:`DYNAMIC_FAMILIES`) or when its
    ``extra`` parameters carry schedule keys.
    """
    return spec.family in DYNAMIC_FAMILIES or any(
        key in _SCHEDULE_KEYS for key, _ in spec.extra
    )


def is_streamed_scenario(spec: "ScenarioSpec") -> bool:
    """True when the spec describes a streamed (sharded) scenario family.

    Streamed specs are routed shard by shard through
    :mod:`repro.scenarios.streaming`; :func:`build_scenario` still
    materialises them fully for the small sizes conformance uses.
    """
    return spec.family.startswith("streamed-")


@dataclass(frozen=True)
class ScenarioSpec:
    """One network instance the harness should build and evaluate."""

    name: str
    family: str
    size: int
    seed: int = 0
    radius: Optional[float] = None
    dimension: int = 2
    namespace_size: Optional[int] = None
    extra: Tuple[Tuple[str, object], ...] = ()

    def parameters(self) -> Dict[str, object]:
        """All parameters as a dictionary (for report rows)."""
        params: Dict[str, object] = {
            "name": self.name,
            "family": self.family,
            "size": self.size,
            "seed": self.seed,
            "dimension": self.dimension,
        }
        if self.radius is not None:
            params["radius"] = self.radius
        params.update(dict(self.extra))
        return params


@dataclass
class ExperimentResult:
    """Rows accumulated by a sweep, plus the header naming their columns."""

    experiment: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, row: Sequence[object]) -> None:
        """Append one row, validating its width."""
        if len(row) != len(self.headers):
            raise ExperimentError(
                f"experiment {self.experiment!r}: row width {len(row)} != {len(self.headers)}"
            )
        self.rows.append(list(row))


#: The sweep orchestrator and its docs call the aggregated result an
#: *experiment table*; both names refer to the same class.
ExperimentTable = ExperimentResult


def build_scenario(spec: ScenarioSpec) -> AdHocNetwork:
    """Materialise a scenario into an :class:`AdHocNetwork`.

    Families: ``unit-disk`` (requires ``radius``), ``grid``, ``torus``,
    ``ring``, ``prism``, ``random-regular``, ``erdos-renyi``, ``lollipop``,
    ``tree``, ``two-rings``, plus the :mod:`repro.scenarios` families —
    ``hetero-unit-disk`` / ``churn`` / ``mobility`` (budgeted unit-disk over
    a capability profile, require ``radius``) and ``streamed-*`` (sharded
    families, materialised fully here only for small sizes).

    Structured families round ``size`` to the nearest valid configuration
    (a grid needs a square side, a prism an even count, ``two-rings`` two
    cycles of >= 3 vertices, ...), so the realised vertex count can differ
    slightly from ``spec.size`` — read it off the returned network.
    """
    family = spec.family
    if family == "unit-disk":
        if spec.radius is None:
            raise ExperimentError("unit-disk scenarios need a radius")
        return build_unit_disk_network(
            spec.size,
            spec.radius,
            dimension=spec.dimension,
            seed=spec.seed,
            namespace_size=spec.namespace_size,
        )
    if family in ("hetero-unit-disk",) + DYNAMIC_FAMILIES:
        # Heterogeneous (budgeted) unit-disk; for churn/mobility this is the
        # all-up snapshot-0 base network the dynamic schedule starts from.
        from repro.scenarios.capabilities import build_hetero_network

        return build_hetero_network(spec)
    if is_streamed_scenario(spec):
        # Full materialisation — intended for the *small* streamed sizes the
        # conformance/parity paths use; large families route shard by shard
        # through repro.scenarios.streaming without ever building this.
        from repro.scenarios.streaming import streamed_network

        return streamed_network(spec)
    graph = _structured_graph(spec)
    return build_graph_network(graph, namespace_size=spec.namespace_size)


def _structured_graph(spec: ScenarioSpec) -> LabeledGraph:
    family, size, seed = spec.family, spec.size, spec.seed
    extra = dict(spec.extra)
    if family == "grid":
        side = max(2, int(round(size ** 0.5)))
        return generators.grid_graph(side, side)
    if family == "torus":
        side = max(3, int(round(size ** 0.5)))
        return generators.torus_graph(side, side)
    if family == "ring":
        return generators.cycle_graph(max(3, size))
    if family == "prism":
        return generators.prism_graph(max(3, size // 2))
    if family == "random-regular":
        degree = int(extra.get("degree", 3))
        n = size if (size * degree) % 2 == 0 else size + 1
        return generators.random_regular_graph(n, degree, seed=seed)
    if family == "erdos-renyi":
        probability = float(extra.get("p", 0.1))
        return generators.erdos_renyi_graph(size, probability, seed=seed)
    if family == "lollipop":
        clique = max(3, size // 2)
        return generators.lollipop_graph(clique, max(1, size - clique))
    if family == "tree":
        return generators.random_tree(max(1, size), seed=seed)
    if family == "two-rings":
        # Deliberately disconnected: exercises the FAILURE/confirmation paths.
        half = max(3, size // 2)
        return generators.disjoint_union(
            [generators.cycle_graph(half), generators.cycle_graph(max(3, size - half))]
        )
    raise ExperimentError(f"unknown scenario family {family!r}")


def build_schedule(spec: ScenarioSpec) -> TopologySchedule:
    """Materialise a scenario into a :class:`TopologySchedule`.

    The schedule starts from the spec's base topology and derives further
    snapshots with the mutation named in the spec's ``extra`` parameters:

    ``snapshots``
        Number of snapshots (default 1: a static schedule).
    ``switch_every``
        Walk steps between consecutive switch times (default 8).
    ``mutation``
        One of :data:`SCHEDULE_MUTATIONS`: ``relabel`` permutes every
        vertex's port labels (degrees preserved — the walk can survive),
        ``drop-edge`` removes one random link per snapshot (degrees change —
        the walk strands when the change hits it), ``static`` repeats the
        base graph object.

    Mutations are seeded from ``spec.seed``, so the same spec always yields
    the same schedule.

    The :data:`DYNAMIC_FAMILIES` (``churn`` / ``mobility``) ignore the
    mutation machinery entirely: their schedules come from the session/
    mobility processes in :mod:`repro.scenarios.churn` (reading ``profile``,
    ``snapshots`` and ``switch_every`` from ``extra``).

    Every mutation-generated snapshot is validated to preserve the base
    topology's vertex namespace — in-flight walks name the vertex they sit
    on, so a snapshot that drops (or invents) vertices would corrupt them
    mid-delivery.  A violating mutation raises
    :class:`~repro.errors.GraphStructureError` naming the offending snapshot
    index.
    """
    if spec.family in DYNAMIC_FAMILIES:
        from repro.scenarios.churn import build_churn_schedule, build_mobility_schedule

        if spec.family == "churn":
            return build_churn_schedule(spec)
        return build_mobility_schedule(spec)
    base = build_scenario(spec).graph
    extra = dict(spec.extra)
    count = int(extra.get("snapshots", 1))
    period = int(extra.get("switch_every", 8))
    mutation = str(extra.get("mutation", "relabel"))
    if count < 1:
        raise ExperimentError("a schedule needs at least one snapshot")
    if period < 1:
        raise ExperimentError("switch_every must be positive")
    if mutation not in SCHEDULE_MUTATIONS:
        raise ExperimentError(
            f"unknown schedule mutation {mutation!r}; expected one of {SCHEDULE_MUTATIONS}"
        )
    rng = random.Random((spec.seed, "schedule-mutations").__repr__())
    base_vertices = set(base.vertices)
    snapshots: List[LabeledGraph] = [base]
    current = base
    for index in range(1, count):
        current = _mutate_snapshot(current, mutation, rng)
        if set(current.vertices) != base_vertices:
            missing = sorted(base_vertices - set(current.vertices))
            extra_vertices = sorted(set(current.vertices) - base_vertices)
            raise GraphStructureError(
                f"schedule mutation {mutation!r} broke the vertex namespace at "
                f"snapshot {index}: missing {missing!r}, unexpected "
                f"{extra_vertices!r}"
            )
        snapshots.append(current)
    switch_times = tuple(index * period for index in range(count))
    return TopologySchedule(snapshots=tuple(snapshots), switch_times=switch_times)


def _mutate_snapshot(graph: LabeledGraph, mutation: str, rng: random.Random) -> LabeledGraph:
    if mutation == "static":
        return graph
    if mutation == "relabel":
        return graph.with_relabeled_ports(rng)
    # mutation == "drop-edge": remove one random (non-loop) link, keeping the
    # vertex set; the two endpoints lose a degree, which strands a walk that
    # is sitting on them when the switch hits.
    edges = [edge for edge in graph.edges() if not edge.is_self_loop]
    if not edges:
        return graph
    dropped = rng.choice(edges)
    kept = [
        (edge.u, edge.v)
        for edge in graph.edges()
        if edge.key() != dropped.key()
    ]
    return LabeledGraph.from_edges(kept, vertices=graph.vertices)


def unit_disk_scenarios(
    sizes: Sequence[int],
    radius: float,
    dimension: int = 2,
    seeds: Sequence[int] = (0,),
) -> List[ScenarioSpec]:
    """A grid of unit-disk scenarios over sizes × seeds."""
    return [
        ScenarioSpec(
            name=f"udg{dimension}d-n{size}-s{seed}",
            family="unit-disk",
            size=size,
            seed=seed,
            radius=radius,
            dimension=dimension,
        )
        for size, seed in itertools.product(sizes, seeds)
    ]


def structured_scenarios(
    family: str, sizes: Sequence[int], seeds: Sequence[int] = (0,), **extra: object
) -> List[ScenarioSpec]:
    """A grid of structured-topology scenarios over sizes × seeds."""
    extras = tuple(sorted(extra.items()))
    return [
        ScenarioSpec(
            name=f"{family}-n{size}-s{seed}",
            family=family,
            size=size,
            seed=seed,
            extra=extras,
        )
        for size, seed in itertools.product(sizes, seeds)
    ]


def dynamic_schedule_scenarios(
    families: Sequence[str] = ("grid", "ring"),
    sizes: Sequence[int] = (16,),
    seeds: Sequence[int] = (0,),
    snapshot_count: int = 3,
    switch_every: int = 6,
    mutations: Sequence[str] = ("relabel",),
    snapshots: Optional[int] = None,
) -> List[ScenarioSpec]:
    """A grid of dynamic-schedule scenarios over families × sizes × seeds × mutations.

    Each spec carries the schedule parameters in ``extra`` and is materialised
    with :func:`build_schedule`; its base topology is still available through
    :func:`build_scenario`, which is how the conformance harness compares the
    dynamic walk against static routing on snapshot 0.

    ``snapshot_count`` sets how many snapshots each schedule carries (the
    ``repro sweep`` CLI threads ``--snapshots`` through here); the legacy
    ``snapshots`` keyword is accepted as an alias and takes precedence when
    given.
    """
    if snapshots is not None:
        snapshot_count = snapshots
    if snapshot_count < 1:
        raise ExperimentError("a schedule needs at least one snapshot")
    specs: List[ScenarioSpec] = []
    for family, size, seed, mutation in itertools.product(
        families, sizes, seeds, mutations
    ):
        specs.append(
            ScenarioSpec(
                name=f"dyn-{mutation}-{family}-n{size}-s{seed}",
                family=family,
                size=size,
                seed=seed,
                extra=(
                    ("mutation", mutation),
                    ("snapshots", snapshot_count),
                    ("switch_every", switch_every),
                ),
            )
        )
    return specs


def pick_source_target_pairs(
    network, pairs: int, seed: int = 0, distinct: bool = True
) -> List[Tuple[int, int]]:
    """Deterministically choose source/target node pairs for an experiment.

    ``network`` is an :class:`AdHocNetwork` or a bare
    :class:`~repro.graphs.labeled_graph.LabeledGraph` (anything carrying its
    vertex set directly or via a ``graph`` attribute).
    """
    vertices = list(getattr(network, "graph", network).vertices)
    if not vertices:
        raise ExperimentError("cannot pick pairs from an empty network")
    rng = random.Random(seed)
    chosen: List[Tuple[int, int]] = []
    for _ in range(pairs):
        source = rng.choice(vertices)
        target = rng.choice(vertices)
        if distinct and len(vertices) > 1:
            while target == source:
                target = rng.choice(vertices)
        chosen.append((source, target))
    return chosen


def reference_run_parameter_sweep(
    experiment: str,
    headers: Sequence[str],
    scenarios: Sequence[ScenarioSpec],
    evaluate: Callable[[ScenarioSpec, AdHocNetwork], Iterable[Sequence[object]]],
) -> ExperimentResult:
    """Build every scenario and collect the rows ``evaluate`` produces for it.

    This is the executable specification of a parameter sweep — one process,
    scenarios in order, rows in order.  The parallel path of
    :func:`run_parameter_sweep` must reproduce its output row for row.
    """
    result = ExperimentResult(experiment=experiment, headers=list(headers))
    for spec in scenarios:
        network = build_scenario(spec)
        for row in evaluate(spec, network):
            result.add_row(row)
    return result


def run_parameter_sweep(
    experiment: str,
    headers: Sequence[str],
    scenarios: Sequence[ScenarioSpec],
    evaluate: Callable[[ScenarioSpec, AdHocNetwork], Iterable[Sequence[object]]],
    workers: int = 1,
) -> ExperimentResult:
    """Run a parameter sweep, optionally sharded across worker processes.

    ``workers <= 1`` delegates to :func:`reference_run_parameter_sweep`
    unchanged.  ``workers > 1`` builds and evaluates every scenario in a
    process pool (one task per scenario, each worker building its scenario
    locally and reusing the per-process prepared-engine caches) and
    aggregates the per-scenario row groups in scenario order, so the result
    is row-for-row identical to the serial reference.  The parallel path
    requires ``evaluate`` to be picklable — a module-level function, not a
    closure or lambda — and deterministic per ``(spec, network)``: a function
    that carries state across calls (a shared RNG, an accumulating counter)
    would see that state reset per worker and silently diverge from the
    serial reference.

    Deprecated kwargs-style form: new code should submit a
    :class:`repro.api.SweepRequest` (scenario × router grids) through
    :class:`repro.api.Session`.  When a custom ``evaluate`` body really is
    needed, call :func:`reference_run_parameter_sweep` (serial) or
    :func:`repro.analysis.runner.map_scenario_rows` (the same process-pool
    fan-out this function's parallel branch uses).  Emits one
    :class:`DeprecationWarning` per process; results are unchanged.
    """
    warn_once(
        "experiments.run_parameter_sweep",
        "run_parameter_sweep(...) is deprecated; submit a "
        "repro.api.SweepRequest through repro.api.Session — for custom "
        "evaluate bodies use reference_run_parameter_sweep (serial) or "
        "repro.analysis.runner.map_scenario_rows (parallel) instead",
    )
    if workers <= 1:
        return reference_run_parameter_sweep(experiment, headers, scenarios, evaluate)
    # Imported lazily: runner imports this module for the spec/table types.
    from repro.analysis.runner import map_scenario_rows

    result = ExperimentResult(experiment=experiment, headers=list(headers))
    for rows in map_scenario_rows(evaluate, scenarios, workers):
        for row in rows:
            result.add_row(row)
    return result
